package collector

// Columnar batch ingest: the wire and WAL fast path for mega-campaigns.
//
// POST /ingest/batch carries concatenated dataset batch frames
// (dataset.MarshalBatch). Relative to the per-record CSV path the server
// saves three ways: the body decodes column-at-a-time instead of
// field-at-a-time, the WAL logs the verbatim wire frame once per batch
// instead of re-marshalling a CSV row per record, and the ack still rides
// the same group-commit fsync. Replay and compaction understand both frame
// kinds, so a log may freely mix them.

import (
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
)

// walKindExtensionBatch logs one columnar frame (dataset.MarshalBatch
// bytes) holding many extension records.
const walKindExtensionBatch byte = 3

// WALKindExtensionBatch is the batch-frame record kind exported for offline
// log consumers (cluster compaction, collectord -wal-dump).
const WALKindExtensionBatch = walKindExtensionBatch

// DecodeWALExtensionBatch parses a walKindExtensionBatch payload back into
// the records it logged.
func DecodeWALExtensionBatch(payload []byte) ([]extension.Record, error) {
	return dataset.UnmarshalBatch(payload)
}

// OfferExtensionFrame submits a decoded columnar frame: one WAL append for
// the whole batch, then every record enqueued to its shard. frame is the
// verbatim wire encoding of recs and may be nil, in which case the WAL
// payload is re-marshalled from recs (the forwarding path, where the local
// subset differs from the wire frame). Returns per-record accepted/dropped
// counts; sc is the decode span the batch's representative record carries.
func (a *Aggregator) OfferExtensionFrame(frame []byte, recs []extension.Record, sc trace.SpanContext) (accepted, dropped int) {
	if len(recs) == 0 {
		return 0, 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		for i := range recs {
			a.shardFor(recs[i].City, recs[i].ISP).met.dropped[itemExtension].Inc()
		}
		return 0, len(recs)
	}
	// Log before enqueue, as in offer() — but one frame for the batch, not
	// one row per record. A crash after this point replays the whole frame.
	if a.wal != nil {
		sp := a.cfg.Tracer.StartChild(sc, "wal.append")
		lsn, err := a.appendBatchWAL(frame, recs)
		if err != nil {
			sp.SetError(err)
			sp.Finish()
			for i := range recs {
				a.shardFor(recs[i].City, recs[i].ISP).met.dropped[itemExtension].Inc()
			}
			return 0, len(recs)
		}
		sp.SetInt("lsn", int64(lsn))
		sp.SetInt("records", int64(len(recs)))
		sp.Finish()
	}
	now := time.Now()
	for i := range recs {
		sh := a.shardFor(recs[i].City, recs[i].ISP)
		it := item{kind: itemExtension, ext: recs[i], enqueued: now}
		if i == 0 {
			it.span = sc
		}
		if a.cfg.Policy == Block {
			sh.ch <- it
			sh.met.accepted[itemExtension].Inc()
			accepted++
			continue
		}
		select {
		case sh.ch <- it:
			sh.met.accepted[itemExtension].Inc()
			accepted++
		default:
			sh.met.dropped[itemExtension].Inc()
			dropped++
		}
	}
	return accepted, dropped
}

// batchApply is the shared fan-out header for one zero-copy batch: the view
// every shard reads rows from, a count of outstanding references, and the
// row-partition scratch. The offerer takes one reference per touched shard
// before anything is sent; each shard (or the offerer, for a shed slice)
// drops one when its slice is finished, and the last reference returns the
// view and the header to their pools.
type batchApply struct {
	agg  *Aggregator
	view *dataset.BatchView

	pending atomic.Int32

	rows    []int32 // all row indices, grouped by shard, ascending per shard
	offs    []int32 // per-shard [start, end) offsets into rows; len = shards+1
	shardOf []int32 // scratch: owning shard per row
	next    []int32 // scratch: per-shard write cursor for the placement pass
}

// done releases one shard's reference on the shared view.
func (b *batchApply) done() {
	if b.pending.Add(-1) == 0 {
		b.agg.views.Put(b.view)
		b.view = nil
		b.agg.applyPool.Put(b)
	}
}

// partition groups the view's row indices by owning shard with a counting
// sort: one hash per row and two linear passes, no per-row allocation. Rows
// stay ascending within each shard, so a shard applies exactly the
// subsequence — in the same order — that the serial per-record path would
// deliver it, and snapshots come out identical.
func (b *batchApply) partition() {
	a, v := b.agg, b.view
	n, nsh := v.Len(), len(a.shards)
	b.rows = growI32(b.rows, n)
	b.shardOf = growI32(b.shardOf, n)
	b.offs = growI32(b.offs, nsh+1)
	b.next = growI32(b.next, nsh)
	for i := range b.offs {
		b.offs[i] = 0
	}
	for i := 0; i < n; i++ {
		s := int32(shardHash(v.City(i), v.ISP(i)) % uint32(nsh))
		b.shardOf[i] = s
		b.offs[s+1]++
	}
	for s := 0; s < nsh; s++ {
		b.offs[s+1] += b.offs[s]
	}
	copy(b.next, b.offs[:nsh])
	for i := 0; i < n; i++ {
		s := b.shardOf[i]
		b.rows[b.next[s]] = int32(i)
		b.next[s]++
	}
}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// OfferBatchView is the pipelined ingest fast path: it takes ownership of a
// pooled zero-copy view, logs its verbatim frame in one WAL append, hashes
// every row to its shard once, and hands each shard a single item carrying
// that shard's row slice — no per-record materialisation, no per-record
// channel send. Returns per-record accepted/dropped counts like
// OfferExtensionFrame; the view returns to the pool when the last shard
// finishes (or immediately on the reject paths).
func (a *Aggregator) OfferBatchView(v *dataset.BatchView, sc trace.SpanContext) (accepted, dropped int) {
	n := v.Len()
	if n == 0 {
		a.views.Put(v)
		return 0, 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		for i := 0; i < n; i++ {
			a.shardFor(v.City(i), v.ISP(i)).met.dropped[itemExtension].Inc()
		}
		a.views.Put(v)
		return 0, n
	}
	// Log before enqueue, as everywhere: one verbatim frame for the batch.
	if a.wal != nil {
		sp := a.cfg.Tracer.StartChild(sc, "wal.append")
		lsn, err := a.appendViewWAL(v)
		if err != nil {
			sp.SetError(err)
			sp.Finish()
			for i := 0; i < n; i++ {
				a.shardFor(v.City(i), v.ISP(i)).met.dropped[itemExtension].Inc()
			}
			a.views.Put(v)
			return 0, n
		}
		sp.SetInt("lsn", int64(lsn))
		sp.SetInt("records", int64(n))
		sp.Finish()
	}
	ba, _ := a.applyPool.Get().(*batchApply)
	if ba == nil {
		ba = &batchApply{agg: a}
	}
	ba.view = v
	ba.partition()
	// Every touched shard holds one reference. The count must be final
	// before the first send: a shard may finish — and call done — while
	// later sends are still in flight.
	touched := int32(0)
	for s := 0; s < len(a.shards); s++ {
		if ba.offs[s+1] > ba.offs[s] {
			touched++
		}
	}
	ba.pending.Store(touched)
	now := time.Now()
	spanned := false
	for s := 0; s < len(a.shards); s++ {
		lo, hi := ba.offs[s], ba.offs[s+1]
		if lo == hi {
			continue
		}
		sh := a.shards[s]
		it := item{kind: itemBatch, enqueued: now, batch: ba, rows: ba.rows[lo:hi]}
		if !spanned {
			it.span = sc
			spanned = true
		}
		if a.cfg.Policy == Block {
			sh.ch <- it
			sh.met.accepted[itemExtension].Add(uint64(hi - lo))
			accepted += int(hi - lo)
			continue
		}
		select {
		case sh.ch <- it:
			sh.met.accepted[itemExtension].Add(uint64(hi - lo))
			accepted += int(hi - lo)
		default:
			sh.met.dropped[itemExtension].Add(uint64(hi - lo))
			dropped += int(hi - lo)
			ba.done() // the shed slice's reference is ours to release
		}
	}
	return accepted, dropped
}

// appendViewWAL logs the view's verbatim wire frame — already CRC-checked by
// the parse — when it fits the WAL payload bound; an oversized frame falls
// back to materialising the records and splitting, as appendBatchWAL does.
func (a *Aggregator) appendViewWAL(v *dataset.BatchView) (uint64, error) {
	frame := v.Frame()
	if len(frame) <= wal.MaxPayload {
		return a.wal.Append(walKindExtensionBatch, frame)
	}
	return a.appendBatchWAL(frame, v.AppendRecords(nil))
}

// appendBatchWAL logs a frame, re-marshalling (and, when a frame would
// exceed the WAL's payload bound, splitting) as needed. Wire frames from
// well-behaved clients fit as-is; the split path exists so a single giant
// frame cannot wedge durable ingest.
func (a *Aggregator) appendBatchWAL(frame []byte, recs []extension.Record) (uint64, error) {
	if frame == nil {
		frame = dataset.MarshalBatch(recs)
	}
	if len(frame) <= wal.MaxPayload {
		return a.wal.Append(walKindExtensionBatch, frame)
	}
	if len(recs) <= 1 {
		return 0, fmt.Errorf("collector: one-record frame of %d bytes exceeds WAL payload limit", len(frame))
	}
	mid := len(recs) / 2
	if _, err := a.appendBatchWAL(nil, recs[:mid]); err != nil {
		return 0, err
	}
	return a.appendBatchWAL(nil, recs[mid:])
}

// viewHasForeign reports whether any row of the view routes to a peer. It
// scans through a stack record — interned strings, no allocation — so the
// all-local common case never materialises the batch.
func viewHasForeign(fwd Forwarder, v *dataset.BatchView) bool {
	var rec extension.Record
	for i := 0; i < v.Len(); i++ {
		v.RecordAt(i, &rec)
		if fwd.OwnerExtension(rec) != "" {
			return true
		}
	}
	return false
}

// handleIngestBatch is the columnar twin of handleIngestExtension, running
// the pipelined fast path: each frame is validated once into a pooled
// zero-copy view and fanned to the shards as row slices. Misrouted frames
// fall back to materialised records so forwarding works exactly as on the
// CSV path, and the 200 waits on the same WAL group commit.
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if reason, ok := s.admitIngest(r); !ok {
		shedReject(w, r, reason)
		return
	}
	fwd := s.ingestForwarder(r)
	decode := s.startDecode(r)
	var reply IngestReply
	var byPeer map[string][]extension.Record
	for {
		v, err := s.agg.views.Read(r.Body)
		if err == io.EOF {
			break
		}
		if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad frame: %v", err))
			return
		}
		if fwd != nil && viewHasForeign(fwd, v) {
			// The wire frame no longer matches what this instance keeps:
			// materialise, split by owner, and let the slow path re-marshal
			// the WAL payload from the local subset.
			recs := v.AppendRecords(nil)
			s.agg.views.Put(v)
			local := recs[:0]
			for i := range recs {
				if peer := fwd.OwnerExtension(recs[i]); peer != "" {
					if byPeer == nil {
						byPeer = make(map[string][]extension.Record)
					}
					byPeer[peer] = append(byPeer[peer], recs[i])
					continue
				}
				local = append(local, recs[i])
			}
			acc, drop := s.agg.OfferExtensionFrame(nil, local, representative(decode, reply))
			reply.Accepted += acc
			reply.Dropped += drop
			continue
		}
		acc, drop := s.agg.OfferBatchView(v, representative(decode, reply))
		reply.Accepted += acc
		reply.Dropped += drop
	}
	finishDecode(decode, reply)
	for peer, recs := range byPeer {
		n, err := fwd.ForwardExtension(peer, recs, rootContext(r))
		reply.Forwarded += n
		if err != nil {
			forwardError(w, reply, peer, err)
			return
		}
	}
	s.ackIngest(w, r, reply, start)
}
