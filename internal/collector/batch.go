package collector

// Columnar batch ingest: the wire and WAL fast path for mega-campaigns.
//
// POST /ingest/batch carries concatenated dataset batch frames
// (dataset.MarshalBatch). Relative to the per-record CSV path the server
// saves three ways: the body decodes column-at-a-time instead of
// field-at-a-time, the WAL logs the verbatim wire frame once per batch
// instead of re-marshalling a CSV row per record, and the ack still rides
// the same group-commit fsync. Replay and compaction understand both frame
// kinds, so a log may freely mix them.

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
)

// walKindExtensionBatch logs one columnar frame (dataset.MarshalBatch
// bytes) holding many extension records.
const walKindExtensionBatch byte = 3

// WALKindExtensionBatch is the batch-frame record kind exported for offline
// log consumers (cluster compaction, collectord -wal-dump).
const WALKindExtensionBatch = walKindExtensionBatch

// DecodeWALExtensionBatch parses a walKindExtensionBatch payload back into
// the records it logged.
func DecodeWALExtensionBatch(payload []byte) ([]extension.Record, error) {
	return dataset.UnmarshalBatch(payload)
}

// OfferExtensionFrame submits a decoded columnar frame: one WAL append for
// the whole batch, then every record enqueued to its shard. frame is the
// verbatim wire encoding of recs and may be nil, in which case the WAL
// payload is re-marshalled from recs (the forwarding path, where the local
// subset differs from the wire frame). Returns per-record accepted/dropped
// counts; sc is the decode span the batch's representative record carries.
func (a *Aggregator) OfferExtensionFrame(frame []byte, recs []extension.Record, sc trace.SpanContext) (accepted, dropped int) {
	if len(recs) == 0 {
		return 0, 0
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		for i := range recs {
			a.shardFor(recs[i].City, recs[i].ISP).met.dropped[itemExtension].Inc()
		}
		return 0, len(recs)
	}
	// Log before enqueue, as in offer() — but one frame for the batch, not
	// one row per record. A crash after this point replays the whole frame.
	if a.wal != nil {
		sp := a.cfg.Tracer.StartChild(sc, "wal.append")
		lsn, err := a.appendBatchWAL(frame, recs)
		if err != nil {
			sp.SetError(err)
			sp.Finish()
			for i := range recs {
				a.shardFor(recs[i].City, recs[i].ISP).met.dropped[itemExtension].Inc()
			}
			return 0, len(recs)
		}
		sp.SetInt("lsn", int64(lsn))
		sp.SetInt("records", int64(len(recs)))
		sp.Finish()
	}
	now := time.Now()
	for i := range recs {
		sh := a.shardFor(recs[i].City, recs[i].ISP)
		it := item{kind: itemExtension, ext: recs[i], enqueued: now}
		if i == 0 {
			it.span = sc
		}
		if a.cfg.Policy == Block {
			sh.ch <- it
			sh.met.accepted[itemExtension].Inc()
			accepted++
			continue
		}
		select {
		case sh.ch <- it:
			sh.met.accepted[itemExtension].Inc()
			accepted++
		default:
			sh.met.dropped[itemExtension].Inc()
			dropped++
		}
	}
	return accepted, dropped
}

// appendBatchWAL logs a frame, re-marshalling (and, when a frame would
// exceed the WAL's payload bound, splitting) as needed. Wire frames from
// well-behaved clients fit as-is; the split path exists so a single giant
// frame cannot wedge durable ingest.
func (a *Aggregator) appendBatchWAL(frame []byte, recs []extension.Record) (uint64, error) {
	if frame == nil {
		frame = dataset.MarshalBatch(recs)
	}
	if len(frame) <= wal.MaxPayload {
		return a.wal.Append(walKindExtensionBatch, frame)
	}
	if len(recs) <= 1 {
		return 0, fmt.Errorf("collector: one-record frame of %d bytes exceeds WAL payload limit", len(frame))
	}
	mid := len(recs) / 2
	if _, err := a.appendBatchWAL(nil, recs[:mid]); err != nil {
		return 0, err
	}
	return a.appendBatchWAL(nil, recs[mid:])
}

// handleIngestBatch is the columnar twin of handleIngestExtension: the body
// is a stream of batch frames; each frame is CRC-checked and decoded as a
// unit, misrouted records are forwarded exactly as on the CSV path, and the
// 200 waits on the same WAL group commit.
func (s *Server) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if reason, ok := s.admitIngest(r); !ok {
		shedReject(w, r, reason)
		return
	}
	fwd := s.ingestForwarder(r)
	decode := s.startDecode(r)
	var reply IngestReply
	var byPeer map[string][]extension.Record
	for {
		frame, err := dataset.ReadBatchFrame(r.Body)
		if err == io.EOF {
			break
		}
		if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad frame: %v", err))
			return
		}
		recs, err := dataset.UnmarshalBatch(frame)
		if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad frame: %v", err))
			return
		}
		local := recs
		if fwd != nil {
			foreign := false
			for i := range recs {
				if fwd.OwnerExtension(recs[i]) != "" {
					foreign = true
					break
				}
			}
			if foreign {
				// The wire frame no longer matches what this instance
				// keeps; the WAL payload is re-marshalled from the local
				// subset.
				frame = nil
				local = make([]extension.Record, 0, len(recs))
				for i := range recs {
					if peer := fwd.OwnerExtension(recs[i]); peer != "" {
						if byPeer == nil {
							byPeer = make(map[string][]extension.Record)
						}
						byPeer[peer] = append(byPeer[peer], recs[i])
						continue
					}
					local = append(local, recs[i])
				}
			}
		}
		acc, drop := s.agg.OfferExtensionFrame(frame, local, representative(decode, reply))
		reply.Accepted += acc
		reply.Dropped += drop
	}
	finishDecode(decode, reply)
	for peer, recs := range byPeer {
		n, err := fwd.ForwardExtension(peer, recs, rootContext(r))
		reply.Forwarded += n
		if err != nil {
			forwardError(w, reply, peer, err)
			return
		}
	}
	s.ackIngest(w, r, reply, start)
}
