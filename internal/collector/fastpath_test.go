package collector

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
)

// TestShardHashMatchesFNV pins the inlined routing hash to the hash/fnv
// stream it replaced. Checkpoints restore groups with the same function, so
// any divergence would scatter restored state onto the wrong shards.
func TestShardHashMatchesFNV(t *testing.T) {
	check := func(k1, k2 string) {
		t.Helper()
		h := fnv.New32a()
		h.Write([]byte(k1))
		h.Write([]byte{0})
		h.Write([]byte(k2))
		if got, want := shardHash(k1, k2), h.Sum32(); got != want {
			t.Fatalf("shardHash(%q, %q) = %#x, fnv stream = %#x", k1, k2, got, want)
		}
	}
	check("", "")
	check("London", "starlink")
	check("a\x00b", "c\x00")
	check("Zürich", "terrestrial")
	r := rand.New(rand.NewSource(22))
	for i := 0; i < 2000; i++ {
		b1 := make([]byte, r.Intn(24))
		b2 := make([]byte, r.Intn(24))
		r.Read(b1)
		r.Read(b2)
		check(string(b1), string(b2))
	}
}

// fastpathRecords draws a workload with enough key diversity to touch every
// shard and enough repetition to exercise the interner and group memo.
func fastpathRecords(r *rand.Rand, n int) []extension.Record {
	cities := []string{"London", "Zürich", "São Paulo", "Kraków", "Reykjavík", "Berlin", "Paris", "Oslo", "Lima", "Cairo"}
	isps := []string{"starlink", "terrestrial", "dsl"}
	domains := []string{"example.com", "news.site", "video.cdn", "a.b.c", "検索.jp"}
	recs := make([]extension.Record, n)
	for i := range recs {
		recs[i] = extension.Record{
			UserID: "user-x", City: cities[r.Intn(len(cities))], Country: "UK",
			ISP: isps[r.Intn(len(isps))], ASN: 14593,
			At: time.Unix(int64(1700000000+i), 0), Domain: domains[r.Intn(len(domains))],
			Rank: i, Popular: i%3 == 0, PTTMs: float64(10 + r.Intn(500)),
			PLTMs: float64(100 + r.Intn(900)),
		}
	}
	return recs
}

// TestOfferBatchViewMatchesSerial is the fan-out equivalence property: the
// partitioned batch path must leave the aggregator in byte-identical state
// (rendered group rows, counters) to the serial per-record path, because
// each shard applies the same subsequence in the same order.
func TestOfferBatchViewMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	serial := NewAggregator(Config{Shards: 8, QueueLen: 4096})
	batched := NewAggregator(Config{Shards: 8, QueueLen: 4096})
	defer serial.Close()
	defer batched.Close()
	for frameN := 0; frameN < 20; frameN++ {
		recs := fastpathRecords(r, 1+r.Intn(700))
		for i := range recs {
			if !serial.OfferExtension(recs[i]) {
				t.Fatal("serial offer rejected")
			}
		}
		v, err := batched.views.Parse(dataset.MarshalBatch(recs))
		if err != nil {
			t.Fatal(err)
		}
		acc, drop := batched.OfferBatchView(v, trace.SpanContext{})
		if acc != len(recs) || drop != 0 {
			t.Fatalf("frame %d: accepted %d dropped %d of %d", frameN, acc, drop, len(recs))
		}
	}
	if err := serial.Close(); err != nil {
		t.Fatal(err)
	}
	if err := batched.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(serial.Snapshot().Groups)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(batched.Snapshot().Groups)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshots diverge:\n serial  %s\n batched %s", a, b)
	}
	ss, bs := serial.Stats(), batched.Stats()
	if ss.Accepted != bs.Accepted || ss.Processed != bs.Processed || bs.Dropped != 0 {
		t.Fatalf("counters diverge: serial %+v batched %+v", ss, bs)
	}
}

// sumProcessed totals the shard apply counters — the alloc test's barrier
// reads it in a spin loop, so it must not allocate.
func sumProcessed(a *Aggregator) uint64 {
	var n uint64
	for _, sh := range a.shards {
		n += sh.met.processed.Value()
	}
	return n
}

// TestBatchIngestAllocBudget pins the tentpole's allocation win: steady-state
// batch ingest — pooled view read, one-pass shard partition, fan-out, shard
// apply — must stay at or below 0.2 allocations per record (the committed
// baseline was 1/record). Run without the race detector; `make check` runs
// it explicitly.
func TestBatchIngestAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("alloc measurement loop is not short")
	}
	a := NewAggregator(Config{Shards: 8, QueueLen: 4096, Policy: Block})
	defer a.Close()

	const perFrame = 512
	recs := fastpathRecords(rand.New(rand.NewSource(24)), perFrame)
	frame := dataset.MarshalBatch(recs)

	var offered uint64
	rd := bytes.NewReader(frame)
	run := func() {
		rd.Reset(frame)
		v, err := a.views.Read(rd)
		if err != nil {
			panic(err)
		}
		acc, drop := a.OfferBatchView(v, trace.SpanContext{})
		if acc != perFrame || drop != 0 {
			panic("fast path rejected records")
		}
		offered += perFrame
		// Wait for the shards to finish so every run measures the whole
		// pipeline; Gosched (not sleep) keeps the barrier alloc-free.
		for sumProcessed(a) < offered {
			runtime.Gosched()
		}
	}
	for i := 0; i < 50; i++ {
		run() // warm pools, interner, group maps, sketch buffers
	}
	perRun := testing.AllocsPerRun(200, run)
	perRecord := perRun / perFrame
	t.Logf("steady state: %.1f allocs/frame, %.4f allocs/record", perRun, perRecord)
	if perRecord > 0.2 {
		t.Fatalf("batch ingest allocates %.4f/record (%.1f/frame); budget is 0.2/record",
			perRecord, perRun)
	}
}
