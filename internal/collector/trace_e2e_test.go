package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
)

// TestTracedIngestEndToEnd is the acceptance check for the tracing layer:
// a batch POSTed with an injected (sampled) traceparent must produce a kept
// trace whose spans cover HTTP handling, batch decode, WAL append,
// group-commit fsync and shard apply with consistent parent/child nesting —
// and the trace ID must surface as an exemplar on the latency histograms in
// the OpenMetrics exposition.
func TestTracedIngestEndToEnd(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 42})
	srv, err := OpenServer(Config{
		Shards: 2,
		Tracer: tracer,
		WAL:    WALConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	rng := rand.New(rand.NewSource(5))
	records := make([]extension.Record, 20)
	for i := range records {
		records[i] = testRecord(rng, "London", "starlink")
	}
	payload, err := EncodeExtensionBatch(records)
	if err != nil {
		t.Fatal(err)
	}

	// The sampled flag (…-01) forces the tail sampler to keep this trace.
	const parentHeader = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	req, err := http.NewRequest(http.MethodPost, srv.URL()+PathIngestExtension, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ExtensionContentType)
	req.Header.Set(trace.TraceparentHeader, parentHeader)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var reply IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reply.Accepted != len(records) {
		t.Fatalf("ingest: status %d, accepted %d/%d", resp.StatusCode, reply.Accepted, len(records))
	}

	// The shard.apply span finishes asynchronously; poll /traces until the
	// trace carries the full span set.
	const wantTrace = "0af7651916cd43dd8448eb211c80319c"
	var got trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		var reply struct {
			Traces []trace.Trace `json:"traces"`
		}
		if err := getTestJSON(srv.URL()+PathTraces+"?limit=50", &reply); err != nil {
			t.Fatal(err)
		}
		for _, tr := range reply.Traces {
			if tr.ID == wantTrace {
				got = tr
			}
		}
		if len(got.Spans) >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never completed; have %d spans: %+v", wantTrace, len(got.Spans), got.Spans)
		}
		time.Sleep(10 * time.Millisecond)
	}

	byName := map[string]trace.SpanData{}
	for _, sd := range got.Spans {
		if sd.TraceID != wantTrace {
			t.Fatalf("span %s carries trace %s, want %s", sd.Name, sd.TraceID, wantTrace)
		}
		byName[sd.Name] = sd
	}
	root, ok := byName["http POST "+PathIngestExtension]
	if !ok || !root.Root {
		t.Fatalf("missing HTTP root span; have %v", names(got.Spans))
	}
	if root.Parent != "b7ad6b7169203331" {
		t.Fatalf("root parent %q, want the injected span ID", root.Parent)
	}
	decode, ok := byName["ingest.decode"]
	if !ok || decode.Parent != root.SpanID {
		t.Fatalf("ingest.decode missing or mis-parented (%+v); root %s", decode, root.SpanID)
	}
	walAppend, ok := byName["wal.append"]
	if !ok || walAppend.Parent != decode.SpanID {
		t.Fatalf("wal.append missing or mis-parented (%+v); decode %s", walAppend, decode.SpanID)
	}
	fsync, ok := byName["wal.fsync"]
	if !ok || fsync.Parent != root.SpanID {
		t.Fatalf("wal.fsync missing or mis-parented (%+v); root %s", fsync, root.SpanID)
	}
	apply, ok := byName["shard.apply"]
	if !ok || apply.Parent != decode.SpanID {
		t.Fatalf("shard.apply missing or mis-parented (%+v); decode %s", apply, decode.SpanID)
	}

	// Exactly one shard.apply span: only the representative record carries
	// the span context through the queue.
	applies := 0
	for _, sd := range got.Spans {
		if sd.Name == "shard.apply" {
			applies++
		}
	}
	if applies != 1 {
		t.Fatalf("%d shard.apply spans for one batch, want 1", applies)
	}

	// The trace ID must be visible as an exemplar in the OpenMetrics view.
	omReq, _ := http.NewRequest(http.MethodGet, srv.URL()+PathMetrics, nil)
	omReq.Header.Set("Accept", "application/openmetrics-text")
	omResp, err := http.DefaultClient.Do(omReq)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(omResp.Body)
	omResp.Body.Close()
	if !bytes.Contains(body, []byte(`trace_id="`+wantTrace+`"`)) {
		t.Fatalf("no exemplar for trace %s in OpenMetrics exposition:\n%s", wantTrace, body)
	}
	// The 0.0.4 view the golden tests pin must stay exemplar-free.
	samples := scrapeMetrics(t, srv)
	if v, ok := samples.Value("trace_kept_traces", nil); !ok || v < 1 {
		t.Fatalf("trace_kept_traces = %v,%v want >= 1", v, ok)
	}
}

func names(spans []trace.SpanData) []string {
	out := make([]string, len(spans))
	for i, sd := range spans {
		out[i] = sd.Name
	}
	return out
}

// TestUntracedServerHasNoTraceSurface pins the default-off contract: without
// a tracer the /traces route does not exist and ingest works unchanged.
func TestUntracedServerHasNoTraceSurface(t *testing.T) {
	srv := NewServer(Config{Shards: 1})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	rng := rand.New(rand.NewSource(9))
	if !srv.Aggregator().OfferExtension(testRecord(rng, "London", "starlink")) {
		t.Fatal("untraced offer refused")
	}
	resp, err := http.Get(srv.URL() + PathTraces)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /traces on untraced server: %d, want 404", resp.StatusCode)
	}
}

// TestHealthzPoisonIsPermanent extends the poisoned-WAL contract: once an
// fsync fails the writer never recovers — /healthz must answer 503 on every
// subsequent probe, even after the injected fault is cleared and more
// ingest is attempted.
func TestHealthzPoisonIsPermanent(t *testing.T) {
	fs := &syncFailFS{FS: wal.OSFS{}}
	tracer := trace.New(trace.Config{Seed: 7})
	srv, err := OpenServer(Config{
		Shards: 1,
		Tracer: tracer,
		WAL:    WALConfig{Dir: t.TempDir(), FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.hs.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(PathHealthz); code != http.StatusOK {
		t.Fatalf("healthy server: /healthz = %d, want 200", code)
	}

	fs.fail.Store(true)
	rng := rand.New(rand.NewSource(2))
	client := NewClient(srv.URL(), ClientConfig{BatchSize: 1})
	if err := client.AddRecord(testRecord(rng, "London", "starlink")); err == nil {
		client.Close()
	}

	// Clearing the fault must not resurrect the writer: poison is sticky.
	fs.fail.Store(false)
	for probe := 0; probe < 3; probe++ {
		if code := get(PathHealthz); code != http.StatusServiceUnavailable {
			t.Fatalf("probe %d after poison: /healthz = %d, want permanent 503", probe, code)
		}
		c2 := NewClient(srv.URL(), ClientConfig{BatchSize: 1})
		if err := c2.AddRecord(testRecord(rng, "Seattle", "starlink")); err == nil {
			if err := c2.Close(); err == nil {
				t.Fatal("ingest succeeded on a poisoned WAL")
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := srv.Aggregator().Health(); err == nil {
		t.Fatal("Health() must keep reporting the poisoned writer")
	}
	// The failed request's trace is error-tagged, so the tail sampler keeps
	// it even though it was never explicitly sampled.
	traces := tracer.Traces(0, 0)
	foundErr := false
	for _, tr := range traces {
		for _, sd := range tr.Spans {
			if sd.Error != "" {
				foundErr = true
			}
		}
	}
	if !foundErr {
		t.Fatal("poisoned ingest left no error span in the kept traces")
	}
}

// TestTracedRegistryPassesLint extends the naming gate over the tracer's
// scrape-time gauges.
func TestTracedRegistryPassesLint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, err := OpenServer(Config{
		Shards:   1,
		Registry: reg,
		Tracer:   trace.New(trace.Config{Seed: 1}),
		WAL:      WALConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.agg.Close()
	if errs := obs.Lint(reg); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}
