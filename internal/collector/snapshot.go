package collector

import (
	"fmt"
	"math"
	"sort"

	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
)

// ShardStats are one shard's ingest counters. Ingest latency is the time a
// record spent queued before its shard applied it.
type ShardStats struct {
	Shard       int     `json:"shard"`
	Accepted    uint64  `json:"accepted"`
	Dropped     uint64  `json:"dropped"`
	Processed   uint64  `json:"processed"`
	Groups      int     `json:"groups"`
	QueueLen    int     `json:"queue_len"`
	IngestP50Us float64 `json:"ingest_p50_us"`
	IngestP95Us float64 `json:"ingest_p95_us"`
	IngestP99Us float64 `json:"ingest_p99_us"`
}

// GroupRow is the streamed aggregate for one (city, ISP) browsing group.
type GroupRow struct {
	City      string  `json:"city"`
	ISP       string  `json:"isp"`
	Count     uint64  `json:"count"`
	Domains   int     `json:"domains"`
	MeanPTTMs float64 `json:"mean_ptt_ms"`
	P50PTTMs  float64 `json:"p50_ptt_ms"`
	P95PTTMs  float64 `json:"p95_ptt_ms"`
}

// NodeRow is the streamed aggregate for one (node, kind) sample group.
type NodeRow struct {
	Node        string  `json:"node"`
	Kind        string  `json:"kind"`
	Count       uint64  `json:"count"`
	MeanDown    float64 `json:"mean_down_mbps"`
	P50Down     float64 `json:"p50_down_mbps"`
	P95Down     float64 `json:"p95_down_mbps"`
	MeanUp      float64 `json:"mean_up_mbps"`
	MeanPingMs  float64 `json:"mean_ping_ms"`
	MeanLossPct float64 `json:"mean_loss_pct"`
}

// Snapshot is a merged view of every shard's aggregate state.
type Snapshot struct {
	Groups []GroupRow   `json:"groups"`
	Nodes  []NodeRow    `json:"nodes"`
	Shards []ShardStats `json:"shards"`

	Accepted  uint64 `json:"accepted"`
	Dropped   uint64 `json:"dropped"`
	Processed uint64 `json:"processed"`

	// merged per-group state retained for CityTable's class-level unions
	// and for ExportState's mergeable wire form.
	ext    map[extKey]*extAgg
	nodes  map[nodeKey]*nodeAgg
	relErr float64
}

// nanZero keeps JSON encodable: empty-sketch quantiles answer NaN, which
// encoding/json rejects.
func nanZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func mergeSnapshot(parts []shardSnap, relErr float64) *Snapshot {
	s := &Snapshot{ext: make(map[extKey]*extAgg), nodes: make(map[nodeKey]*nodeAgg), relErr: relErr}
	for _, p := range parts {
		st := p.stats
		st.IngestP50Us = nanZero(st.IngestP50Us)
		st.IngestP95Us = nanZero(st.IngestP95Us)
		st.IngestP99Us = nanZero(st.IngestP99Us)
		s.Shards = append(s.Shards, st)
		s.Accepted += st.Accepted
		s.Dropped += st.Dropped
		s.Processed += st.Processed
		// A group key lives on exactly one shard, so these never collide.
		for k, g := range p.ext {
			s.ext[k] = g
		}
		for k, g := range p.nodes {
			s.nodes[k] = g
		}
	}
	s.render()
	return s
}

// render derives the sorted row views from the merged group maps. Both the
// shard merge and the cluster merge (MergeStates) finish through here, so a
// merged-across-instances snapshot renders exactly like a local one.
func (s *Snapshot) render() {
	s.Groups = s.Groups[:0]
	for k, g := range s.ext {
		s.Groups = append(s.Groups, GroupRow{
			City:      k.City,
			ISP:       k.ISP,
			Count:     g.ptt.Count(),
			Domains:   len(g.domains),
			MeanPTTMs: g.ptt.Mean(),
			P50PTTMs:  g.ptt.Quantile(0.5),
			P95PTTMs:  g.ptt.Quantile(0.95),
		})
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		if s.Groups[i].City != s.Groups[j].City {
			return s.Groups[i].City < s.Groups[j].City
		}
		return s.Groups[i].ISP < s.Groups[j].ISP
	})
	s.Nodes = s.Nodes[:0]
	for k, g := range s.nodes {
		n := float64(g.count)
		s.Nodes = append(s.Nodes, NodeRow{
			Node:        k.Node,
			Kind:        k.Kind,
			Count:       g.count,
			MeanDown:    g.down.Mean(),
			P50Down:     g.down.Quantile(0.5),
			P95Down:     g.down.Quantile(0.95),
			MeanUp:      g.upSum / n,
			MeanPingMs:  g.pingSum / n,
			MeanLossPct: g.lossSum / n,
		})
	}
	sort.Slice(s.Nodes, func(i, j int) bool {
		if s.Nodes[i].Node != s.Nodes[j].Node {
			return s.Nodes[i].Node < s.Nodes[j].Node
		}
		return s.Nodes[i].Kind < s.Nodes[j].Kind
	})
}

// Cities returns the distinct cities seen, sorted — the same set
// extension.Collector.Cities reports for the batch pipeline.
func (s *Snapshot) Cities() []string {
	seen := map[string]bool{}
	for k := range s.ext {
		seen[k.City] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// GroupState is the mergeable wire form of one (city, ISP) aggregate: the
// exact domain set plus the quantile sketch's binary serialisation, so a
// peer that imports it answers every quantile identically to the exporter.
type GroupState struct {
	City    string   `json:"city"`
	ISP     string   `json:"isp"`
	Domains []string `json:"domains"`
	PTT     []byte   `json:"ptt"`
}

// NodeState is the mergeable wire form of one (node, kind) aggregate.
type NodeState struct {
	Node    string  `json:"node"`
	Kind    string  `json:"kind"`
	Count   uint64  `json:"count"`
	Down    []byte  `json:"down"`
	UpSum   float64 `json:"up_sum"`
	PingSum float64 `json:"ping_sum"`
	LossSum float64 `json:"loss_sum"`
}

// MergeState is a snapshot's complete mergeable state — what one cluster
// instance ships to the peer coordinating a merged query. Unlike the
// rendered Snapshot rows it loses nothing: sketches travel whole, domain
// sets travel whole, so MergeStates over K instances equals a single
// instance that ingested every record.
type MergeState struct {
	RelErr    float64      `json:"rel_err"`
	Accepted  uint64       `json:"accepted"`
	Dropped   uint64       `json:"dropped"`
	Processed uint64       `json:"processed"`
	Groups    []GroupState `json:"groups"`
	Nodes     []NodeState  `json:"nodes"`
}

// ExportState renders the snapshot's aggregate state in mergeable wire
// form, deterministically ordered (groups by key, domains sorted).
func (s *Snapshot) ExportState() (MergeState, error) {
	out := MergeState{
		RelErr:   s.relErr,
		Accepted: s.Accepted, Dropped: s.Dropped, Processed: s.Processed,
		Groups: make([]GroupState, 0, len(s.ext)),
		Nodes:  make([]NodeState, 0, len(s.nodes)),
	}
	for k, g := range s.ext {
		blob, err := g.ptt.MarshalBinary()
		if err != nil {
			return MergeState{}, err
		}
		domains := make([]string, 0, len(g.domains))
		for d := range g.domains {
			domains = append(domains, d)
		}
		sort.Strings(domains)
		out.Groups = append(out.Groups, GroupState{City: k.City, ISP: k.ISP, Domains: domains, PTT: blob})
	}
	sort.Slice(out.Groups, func(i, j int) bool {
		if out.Groups[i].City != out.Groups[j].City {
			return out.Groups[i].City < out.Groups[j].City
		}
		return out.Groups[i].ISP < out.Groups[j].ISP
	})
	for k, g := range s.nodes {
		blob, err := g.down.MarshalBinary()
		if err != nil {
			return MergeState{}, err
		}
		out.Nodes = append(out.Nodes, NodeState{
			Node: k.Node, Kind: k.Kind, Count: g.count, Down: blob,
			UpSum: g.upSum, PingSum: g.pingSum, LossSum: g.lossSum,
		})
	}
	sort.Slice(out.Nodes, func(i, j int) bool {
		if out.Nodes[i].Node != out.Nodes[j].Node {
			return out.Nodes[i].Node < out.Nodes[j].Node
		}
		return out.Nodes[i].Kind < out.Nodes[j].Kind
	})
	return out, nil
}

// MergeStates folds K exported instance states into one Snapshot, as if a
// single instance had ingested every record behind them. Sketch merges are
// exact bucket additions, domain sets union, counters sum — so tables and
// quantiles match a single-instance run bit for bit (per-group means can
// differ only when one group's records were split across instances, and
// then only by float summation order). All states must share one sketch
// relative error. An empty input merges to an empty snapshot with the
// default relative error.
func MergeStates(states ...MergeState) (*Snapshot, error) {
	relErr := stats.DefaultSketchRelErr
	if len(states) > 0 {
		relErr = states[0].RelErr
	}
	s := &Snapshot{ext: make(map[extKey]*extAgg), nodes: make(map[nodeKey]*nodeAgg), relErr: relErr}
	for _, st := range states {
		if st.RelErr != relErr {
			return nil, fmt.Errorf("collector: cannot merge states with sketch error %v and %v", st.RelErr, relErr)
		}
		s.Accepted += st.Accepted
		s.Dropped += st.Dropped
		s.Processed += st.Processed
		for _, gs := range st.Groups {
			ptt := &stats.QuantileSketch{}
			if err := ptt.UnmarshalBinary(gs.PTT); err != nil {
				return nil, fmt.Errorf("collector: merge group %s/%s: %w", gs.City, gs.ISP, err)
			}
			k := extKey{gs.City, gs.ISP}
			g := s.ext[k]
			if g == nil {
				domains := make(map[string]struct{}, len(gs.Domains))
				for _, d := range gs.Domains {
					domains[d] = struct{}{}
				}
				s.ext[k] = &extAgg{domains: domains, ptt: ptt}
				continue
			}
			// The same group on two instances: a membership change or
			// misrouted-then-forwarded traffic split it. Union and merge.
			for _, d := range gs.Domains {
				g.domains[d] = struct{}{}
			}
			if err := g.ptt.Merge(ptt); err != nil {
				return nil, fmt.Errorf("collector: merge group %s/%s: %w", gs.City, gs.ISP, err)
			}
		}
		for _, ns := range st.Nodes {
			down := &stats.QuantileSketch{}
			if err := down.UnmarshalBinary(ns.Down); err != nil {
				return nil, fmt.Errorf("collector: merge node %s/%s: %w", ns.Node, ns.Kind, err)
			}
			k := nodeKey{ns.Node, ns.Kind}
			g := s.nodes[k]
			if g == nil {
				s.nodes[k] = &nodeAgg{count: ns.Count, down: down,
					upSum: ns.UpSum, pingSum: ns.PingSum, lossSum: ns.LossSum}
				continue
			}
			g.count += ns.Count
			g.upSum += ns.UpSum
			g.pingSum += ns.PingSum
			g.lossSum += ns.LossSum
			if err := g.down.Merge(down); err != nil {
				return nil, fmt.Errorf("collector: merge node %s/%s: %w", ns.Node, ns.Kind, err)
			}
		}
	}
	s.render()
	return s, nil
}

// CityTable renders the streamed state as the paper's Table 1 — the same
// rows extension.Collector.CityTable computes in batch. Request and domain
// counts are exact; median PTTs carry the sketch's relative error.
func (s *Snapshot) CityTable(cities []string) []extension.TableRow {
	var rows []extension.TableRow
	for _, city := range cities {
		row := extension.TableRow{City: city}
		slDomains := map[string]struct{}{}
		nslDomains := map[string]struct{}{}
		slPTT, _ := stats.NewQuantileSketch(s.relErr)
		nslPTT, _ := stats.NewQuantileSketch(s.relErr)
		for k, g := range s.ext {
			if k.City != city {
				continue
			}
			if k.ISP == "starlink" {
				row.StarlinkReqs += int(g.ptt.Count())
				for d := range g.domains {
					slDomains[d] = struct{}{}
				}
				// Same relative error throughout, so Merge cannot fail.
				_ = slPTT.Merge(g.ptt)
			} else {
				row.NonSLReqs += int(g.ptt.Count())
				for d := range g.domains {
					nslDomains[d] = struct{}{}
				}
				_ = nslPTT.Merge(g.ptt)
			}
		}
		row.StarlinkDomains = len(slDomains)
		row.NonSLDomains = len(nslDomains)
		row.StarlinkMedianPTT = slPTT.Quantile(0.5)
		row.NonSLMedianPTT = nslPTT.Quantile(0.5)
		rows = append(rows, row)
	}
	return rows
}
