package collector

import (
	"math"
	"sort"

	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
)

// ShardStats are one shard's ingest counters. Ingest latency is the time a
// record spent queued before its shard applied it.
type ShardStats struct {
	Shard       int     `json:"shard"`
	Accepted    uint64  `json:"accepted"`
	Dropped     uint64  `json:"dropped"`
	Processed   uint64  `json:"processed"`
	Groups      int     `json:"groups"`
	QueueLen    int     `json:"queue_len"`
	IngestP50Us float64 `json:"ingest_p50_us"`
	IngestP95Us float64 `json:"ingest_p95_us"`
	IngestP99Us float64 `json:"ingest_p99_us"`
}

// GroupRow is the streamed aggregate for one (city, ISP) browsing group.
type GroupRow struct {
	City      string  `json:"city"`
	ISP       string  `json:"isp"`
	Count     uint64  `json:"count"`
	Domains   int     `json:"domains"`
	MeanPTTMs float64 `json:"mean_ptt_ms"`
	P50PTTMs  float64 `json:"p50_ptt_ms"`
	P95PTTMs  float64 `json:"p95_ptt_ms"`
}

// NodeRow is the streamed aggregate for one (node, kind) sample group.
type NodeRow struct {
	Node        string  `json:"node"`
	Kind        string  `json:"kind"`
	Count       uint64  `json:"count"`
	MeanDown    float64 `json:"mean_down_mbps"`
	P50Down     float64 `json:"p50_down_mbps"`
	P95Down     float64 `json:"p95_down_mbps"`
	MeanUp      float64 `json:"mean_up_mbps"`
	MeanPingMs  float64 `json:"mean_ping_ms"`
	MeanLossPct float64 `json:"mean_loss_pct"`
}

// Snapshot is a merged view of every shard's aggregate state.
type Snapshot struct {
	Groups []GroupRow   `json:"groups"`
	Nodes  []NodeRow    `json:"nodes"`
	Shards []ShardStats `json:"shards"`

	Accepted  uint64 `json:"accepted"`
	Dropped   uint64 `json:"dropped"`
	Processed uint64 `json:"processed"`

	// merged per-group state retained for CityTable's class-level unions.
	ext    map[extKey]*extAgg
	relErr float64
}

// nanZero keeps JSON encodable: empty-sketch quantiles answer NaN, which
// encoding/json rejects.
func nanZero(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func mergeSnapshot(parts []shardSnap, relErr float64) *Snapshot {
	s := &Snapshot{ext: make(map[extKey]*extAgg), relErr: relErr}
	nodes := make(map[nodeKey]*nodeAgg)
	for _, p := range parts {
		st := p.stats
		st.IngestP50Us = nanZero(st.IngestP50Us)
		st.IngestP95Us = nanZero(st.IngestP95Us)
		st.IngestP99Us = nanZero(st.IngestP99Us)
		s.Shards = append(s.Shards, st)
		s.Accepted += st.Accepted
		s.Dropped += st.Dropped
		s.Processed += st.Processed
		// A group key lives on exactly one shard, so these never collide.
		for k, g := range p.ext {
			s.ext[k] = g
		}
		for k, g := range p.nodes {
			nodes[k] = g
		}
	}
	for k, g := range s.ext {
		s.Groups = append(s.Groups, GroupRow{
			City:      k.City,
			ISP:       k.ISP,
			Count:     g.ptt.Count(),
			Domains:   len(g.domains),
			MeanPTTMs: g.ptt.Mean(),
			P50PTTMs:  g.ptt.Quantile(0.5),
			P95PTTMs:  g.ptt.Quantile(0.95),
		})
	}
	sort.Slice(s.Groups, func(i, j int) bool {
		if s.Groups[i].City != s.Groups[j].City {
			return s.Groups[i].City < s.Groups[j].City
		}
		return s.Groups[i].ISP < s.Groups[j].ISP
	})
	for k, g := range nodes {
		n := float64(g.count)
		s.Nodes = append(s.Nodes, NodeRow{
			Node:        k.Node,
			Kind:        k.Kind,
			Count:       g.count,
			MeanDown:    g.down.Mean(),
			P50Down:     g.down.Quantile(0.5),
			P95Down:     g.down.Quantile(0.95),
			MeanUp:      g.upSum / n,
			MeanPingMs:  g.pingSum / n,
			MeanLossPct: g.lossSum / n,
		})
	}
	sort.Slice(s.Nodes, func(i, j int) bool {
		if s.Nodes[i].Node != s.Nodes[j].Node {
			return s.Nodes[i].Node < s.Nodes[j].Node
		}
		return s.Nodes[i].Kind < s.Nodes[j].Kind
	})
	return s
}

// Cities returns the distinct cities seen, sorted — the same set
// extension.Collector.Cities reports for the batch pipeline.
func (s *Snapshot) Cities() []string {
	seen := map[string]bool{}
	for k := range s.ext {
		seen[k.City] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// CityTable renders the streamed state as the paper's Table 1 — the same
// rows extension.Collector.CityTable computes in batch. Request and domain
// counts are exact; median PTTs carry the sketch's relative error.
func (s *Snapshot) CityTable(cities []string) []extension.TableRow {
	var rows []extension.TableRow
	for _, city := range cities {
		row := extension.TableRow{City: city}
		slDomains := map[string]struct{}{}
		nslDomains := map[string]struct{}{}
		slPTT, _ := stats.NewQuantileSketch(s.relErr)
		nslPTT, _ := stats.NewQuantileSketch(s.relErr)
		for k, g := range s.ext {
			if k.City != city {
				continue
			}
			if k.ISP == "starlink" {
				row.StarlinkReqs += int(g.ptt.Count())
				for d := range g.domains {
					slDomains[d] = struct{}{}
				}
				// Same relative error throughout, so Merge cannot fail.
				_ = slPTT.Merge(g.ptt)
			} else {
				row.NonSLReqs += int(g.ptt.Count())
				for d := range g.domains {
					nslDomains[d] = struct{}{}
				}
				_ = nslPTT.Merge(g.ptt)
			}
		}
		row.StarlinkDomains = len(slDomains)
		row.NonSLDomains = len(nslDomains)
		row.StarlinkMedianPTT = slPTT.Quantile(0.5)
		row.NonSLMedianPTT = nslPTT.Quantile(0.5)
		rows = append(rows, row)
	}
	return rows
}
