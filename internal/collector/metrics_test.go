package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"starlinkview/internal/obs"
	"starlinkview/internal/wal"
)

// scrapeMetrics GETs the server's /metrics and parses the exposition.
func scrapeMetrics(t *testing.T, srv *Server) obs.Samples {
	t.Helper()
	resp, err := http.Get(srv.URL() + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	samples, err := obs.ParseText(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestMetricsMatchClientTotals is the end-to-end accounting check: every
// record a client was told was accepted must appear in ingest_records_total,
// with zero drops, and the ack-latency histogram must have counted exactly
// the acknowledged batches. Runs over a WAL so the durability series are
// exercised too.
func TestMetricsMatchClientTotals(t *testing.T) {
	srv, err := OpenServer(Config{
		Shards: 4,
		WAL:    WALConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	client := NewClient(srv.URL(), ClientConfig{BatchSize: 100})
	const n = 1700
	for i := 0; i < n; i++ {
		city := []string{"London", "Seattle", "Sydney"}[rng.Intn(3)]
		if err := client.AddRecord(testRecord(rng, city, "starlink")); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	cs := client.Stats()
	if cs.Records != n {
		t.Fatalf("client sent %d records, want %d", cs.Records, n)
	}

	// Acceptance is synchronous with the ack; processing drains async.
	deadline := time.Now().Add(5 * time.Second)
	var samples obs.Samples
	for {
		samples = scrapeMetrics(t, srv)
		if samples.Sum("collector_processed_records_total", nil) >= n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shards never processed %d records: %v",
				n, samples.Sum("collector_processed_records_total", nil))
		}
		time.Sleep(10 * time.Millisecond)
	}

	if got := samples.Sum("ingest_records_total", nil); got != float64(cs.Records) {
		t.Fatalf("ingest_records_total %v, want %d", got, cs.Records)
	}
	if got := samples.Sum("ingest_records_total", map[string]string{"source": "extension"}); got != n {
		t.Fatalf(`ingest_records_total{source="extension"} %v, want %d`, got, n)
	}
	if got := samples.Sum("ingest_dropped_records_total", nil); got != 0 {
		t.Fatalf("ingest_dropped_records_total %v, want 0", got)
	}
	if got := samples.Sum("ingest_ack_latency_seconds_count", nil); got != float64(cs.Batches) {
		t.Fatalf("ack histogram counted %v batches, client acked %d", got, cs.Batches)
	}
	if got := samples.Sum("http_requests_total",
		map[string]string{"path": PathIngestExtension, "code": "200"}); got != float64(cs.Batches) {
		t.Fatalf("http_requests_total for ingest %v, want %d", got, cs.Batches)
	}
	if got := samples.Sum("wal_appends_total", nil); got != n {
		t.Fatalf("wal_appends_total %v, want %d", got, n)
	}
	if got := samples.Sum("wal_fsyncs_total", nil); got < 1 {
		t.Fatalf("wal_fsyncs_total %v, want >= 1", got)
	}
	if v, ok := samples.Value("collector_ready", nil); !ok || v != 1 {
		t.Fatalf("collector_ready %v (present %v), want 1", v, ok)
	}
	// Per-shard accounting: every shard's accepted counter equals its
	// processed counter once drained.
	for sh := 0; sh < 4; sh++ {
		lbl := map[string]string{"shard": strconv.Itoa(sh)}
		acc := samples.Sum("ingest_records_total", lbl)
		proc := samples.Sum("collector_processed_records_total", lbl)
		if acc != proc {
			t.Fatalf("shard %d: accepted %v != processed %v", sh, acc, proc)
		}
	}

	// /stats must be the same numbers — it is rendered from the same
	// registry children.
	var st StatsReply
	if err := getTestJSON(srv.URL()+PathStats, &st); err != nil {
		t.Fatal(err)
	}
	if float64(st.Accepted) != samples.Sum("ingest_records_total", nil) ||
		float64(st.Processed) != samples.Sum("collector_processed_records_total", nil) ||
		float64(st.Dropped) != 0 {
		t.Fatalf("/stats %+v disagrees with /metrics", st)
	}
	if st.WAL == nil || st.WAL.Syncs != uint64(samples.Sum("wal_fsyncs_total", nil)) {
		t.Fatalf("/stats WAL %+v disagrees with wal_fsyncs_total", st.WAL)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func getTestJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// syncFailFS delegates to the real filesystem but makes segment Sync fail
// once armed — the smallest fault that poisons the WAL writer.
type syncFailFS struct {
	wal.FS
	fail atomic.Bool
}

func (fs *syncFailFS) Create(name string) (wal.File, error) {
	f, err := fs.FS.Create(name)
	if err != nil {
		return nil, err
	}
	return &syncFailFile{File: f, fs: fs}, nil
}

func (fs *syncFailFS) OpenAppend(name string) (wal.File, error) {
	f, err := fs.FS.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &syncFailFile{File: f, fs: fs}, nil
}

type syncFailFile struct {
	wal.File
	fs *syncFailFS
}

func (f *syncFailFile) Sync() error {
	if f.fs.fail.Load() {
		return errSyncFault
	}
	return f.File.Sync()
}

var errSyncFault = &faultErr{"injected fsync failure"}

type faultErr struct{ msg string }

func (e *faultErr) Error() string { return e.msg }

// TestHealthzTurnsUnhealthyOnPoisonedWAL drives the liveness contract: a
// healthy collector answers 200, and the first failed fsync — after which
// the writer refuses all further appends — flips /healthz to 503 so a
// supervisor pulls the instance before it silently loses data.
func TestHealthzTurnsUnhealthyOnPoisonedWAL(t *testing.T) {
	fs := &syncFailFS{FS: wal.OSFS{}}
	srv, err := OpenServer(Config{
		Shards: 1,
		WAL:    WALConfig{Dir: t.TempDir(), FS: fs},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.hs.Close()

	get := func(path string) int {
		resp, err := http.Get(srv.URL() + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	if code := get(PathHealthz); code != http.StatusOK {
		t.Fatalf("healthy server: /healthz = %d, want 200", code)
	}

	// Arm the fault and push a batch through: the ack path's fsync fails,
	// the batch is refused with a 5xx, and the writer is now poisoned.
	fs.fail.Store(true)
	rng := rand.New(rand.NewSource(1))
	client := NewClient(srv.URL(), ClientConfig{BatchSize: 1})
	if err := client.AddRecord(testRecord(rng, "London", "starlink")); err == nil {
		client.Close() // flush may carry the error instead
	}

	if code := get(PathHealthz); code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned WAL: /healthz = %d, want 503", code)
	}
	if err := srv.Aggregator().Health(); err == nil {
		t.Fatal("Health() must report the poisoned writer")
	}
}

// TestCollectordRegistryPassesLint is the naming gate over the fully wired
// surface: every family the collector, WAL and runtime register must obey
// the Prometheus conventions the linter enforces.
func TestCollectordRegistryPassesLint(t *testing.T) {
	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	srv, err := OpenServer(Config{
		Shards:   2,
		Registry: reg,
		WAL:      WALConfig{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.agg.Close()
	if errs := obs.Lint(reg); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

// TestStatsEndpointUsesRegistry pins the satellite refactor: /stats no
// longer has its own counters, so hammering ingest while scraping /stats
// can never yield accepted < processed skew beyond queue lag.
func TestStatsEndpointUsesRegistry(t *testing.T) {
	srv := NewServer(Config{Shards: 2})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		srv.Aggregator().OfferExtension(testRecord(rng, "London", "starlink"))
	}
	var st StatsReply
	if err := getTestJSON(srv.URL()+PathStats, &st); err != nil {
		t.Fatal(err)
	}
	if st.Accepted != 500 {
		t.Fatalf("accepted %d, want 500", st.Accepted)
	}
	if st.WAL != nil {
		t.Fatal("WAL stats on a WAL-less server")
	}
	if len(st.Shards) != 2 {
		t.Fatalf("got %d shard entries, want 2", len(st.Shards))
	}
	reg := srv.Aggregator().Registry()
	if got := sumRegistryCounter(t, reg, "ingest_records_total"); got != 500 {
		t.Fatalf("registry ingest_records_total %v, want 500", got)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// sumRegistryCounter totals a family's children by rendering the registry
// in place — no HTTP round-trip.
func sumRegistryCounter(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	ss, err := obs.ParseText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return ss.Sum(name, nil)
}
