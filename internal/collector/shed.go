package collector

import (
	"sync/atomic"
	"time"

	"starlinkview/internal/obs"
)

// Trace-driven load shedding: an admission controller in front of the
// ingest handlers that, when the collector is demonstrably overloaded,
// sheds whole unsampled requests (429 + Retry-After) while always
// admitting sampled/forced traffic — the requests whose traceparent
// carries the sampled bit, i.e. exactly the ones someone is watching.
//
// Overload is judged by the same signals the observability stack already
// exports: the max shard-queue fill fraction and the interval p99 of
// ingest_ack_latency_seconds (cumulative bucket subtraction between
// evaluator ticks, the loadgen -scrape technique). A periodic evaluator
// runs the watermark state machine and publishes its decision through one
// atomic; the per-request admission cost while armed-but-idle is a single
// atomic load, which is how the <=1% ingest-overhead budget is met.
//
// State machine (evaluated every EvalInterval):
//
//	admit --(fill >= QueueHighPct)------------> shedding(queue_depth)
//	admit --(interval p99 >= AckLatencyP99)---> shedding(ack_latency)
//	shedding --(fill <= QueueLowPct AND p99 clear)--> admit
//
// Entry and exit use different watermarks (QueueLowPct defaults to half of
// QueueHighPct; the latency condition clears only below half the
// watermark), so the controller cannot flap at the threshold.

// ShedConfig arms the admission controller. The zero value disables it.
type ShedConfig struct {
	// QueueHighPct arms queue-depth shedding: when any shard queue's fill
	// fraction (depth / QueueLen) reaches this value in (0,1], unsampled
	// ingest requests are shed until the queues drain to QueueLowPct.
	QueueHighPct float64
	// QueueLowPct is the disarm watermark (default QueueHighPct/2).
	QueueLowPct float64
	// AckLatencyP99 arms latency shedding: when the p99 of the ack-latency
	// histogram over the last evaluation interval reaches this duration,
	// unsampled requests are shed until it falls below half the watermark.
	AckLatencyP99 time.Duration
	// EvalInterval is the evaluator tick (default 25ms).
	EvalInterval time.Duration
}

func (c *ShedConfig) normalize() {
	if c.QueueLowPct <= 0 || c.QueueLowPct > c.QueueHighPct {
		c.QueueLowPct = c.QueueHighPct / 2
	}
	if c.EvalInterval <= 0 {
		c.EvalInterval = 25 * time.Millisecond
	}
}

// armed reports whether any watermark is configured.
func (c ShedConfig) armed() bool { return c.QueueHighPct > 0 || c.AckLatencyP99 > 0 }

// Shed states, also the collector_shed_state gauge values.
const (
	shedAdmit int32 = iota
	shedQueueDepth
	shedAckLatency
)

var shedReasons = [...]string{shedQueueDepth: "queue_depth", shedAckLatency: "ack_latency"}

// shedder is the admission controller. Its metrics register only when a
// watermark is armed, so unarmed collectors expose exactly the series they
// always did.
type shedder struct {
	cfg ShedConfig
	agg *Aggregator

	// state is the evaluator's published decision; the ingest hot path
	// reads it with one atomic load.
	state atomic.Int32

	shedTotal   [len(shedReasons)]*obs.Counter // collector_shed_total{reason}
	stateGauge  *obs.Gauge                     // collector_shed_state
	transitions *obs.Counter                   // collector_shed_transitions_total

	// Previous ack-latency cumulative buckets, for interval p99.
	prevBounds []float64
	prevCum    []uint64

	stop chan struct{}
	done chan struct{}
}

func newShedder(a *Aggregator, cfg ShedConfig) *shedder {
	cfg.normalize()
	reg := a.cfg.Registry
	s := &shedder{
		cfg: cfg,
		agg: a,
		stateGauge: reg.Gauge("collector_shed_state",
			"Admission controller state: 0 admitting, 1 shedding on queue depth, 2 on ack latency."),
		transitions: reg.Counter("collector_shed_transitions_total",
			"Admission controller state transitions."),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	vec := reg.CounterVec("collector_shed_total",
		"Unsampled ingest requests shed by the admission controller, by trigger.", "reason")
	for st, reason := range shedReasons {
		if reason != "" {
			s.shedTotal[st] = vec.With(reason)
		}
	}
	return s
}

// admit is the hot path: one atomic load when the controller is idle. A
// true sampled bit always admits — shedding keeps the watched traffic.
func (s *shedder) admit(sampled bool) (reason string, ok bool) {
	st := s.state.Load()
	if st == shedAdmit || sampled {
		return "", true
	}
	s.shedTotal[st].Inc()
	return shedReasons[st], false
}

func (s *shedder) run() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.EvalInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.eval()
		}
	}
}

// eval gathers the overload signals and runs one watermark decision.
func (s *shedder) eval() {
	p99, p99ok := s.intervalAckP99()
	s.apply(s.maxQueueFill(), p99, p99ok)
}

// apply is the watermark state machine on explicit signals; eval feeds it
// live ones, tests feed it synthetic ones.
func (s *shedder) apply(fill, p99 float64, p99ok bool) {
	cur := s.state.Load()
	next := cur
	if cur == shedAdmit {
		switch {
		case s.cfg.QueueHighPct > 0 && fill >= s.cfg.QueueHighPct:
			next = shedQueueDepth
		case s.cfg.AckLatencyP99 > 0 && p99ok && p99 >= s.cfg.AckLatencyP99.Seconds():
			next = shedAckLatency
		}
	} else {
		queueClear := s.cfg.QueueHighPct <= 0 || fill <= s.cfg.QueueLowPct
		ackClear := s.cfg.AckLatencyP99 <= 0 || !p99ok || p99 < s.cfg.AckLatencyP99.Seconds()/2
		if queueClear && ackClear {
			next = shedAdmit
		}
	}
	if next != cur {
		s.transitions.Inc()
	}
	s.state.Store(next)
	s.stateGauge.Set(float64(next))
}

// maxQueueFill is the worst shard queue's fill fraction. The max (not the
// mean) is the overload signal: one hot shard backpressures every batch
// that touches it under the Block policy.
func (s *shedder) maxQueueFill() float64 {
	var max float64
	for _, sh := range s.agg.shards {
		if f := float64(len(sh.ch)) / float64(s.agg.cfg.QueueLen); f > max {
			max = f
		}
	}
	return max
}

// intervalAckP99 estimates the ack-latency p99 over the last tick by
// cumulative bucket subtraction (obs.QuantileFromBucketDeltas). ok is false
// until two ticks have passed or when the interval saw no acks (a quiet
// collector is not overloaded).
func (s *shedder) intervalAckP99() (float64, bool) {
	bounds, cum := s.agg.met.ackLatency.Buckets()
	prevBounds, prevCum := s.prevBounds, s.prevCum
	s.prevBounds, s.prevCum = bounds, cum
	if len(prevBounds) != len(bounds) {
		return 0, false
	}
	return obs.QuantileFromBucketDeltas(0.99, bounds, cum, prevCum)
}

func (s *shedder) close() {
	close(s.stop)
	<-s.done
}

// Admit asks the admission controller whether ingest work with the given
// sampled bit may enter. Collectors with no shed watermarks always admit.
func (a *Aggregator) Admit(sampled bool) (reason string, ok bool) {
	if a.shed == nil {
		return "", true
	}
	return a.shed.admit(sampled)
}

// ShedState reports the controller's current state gauge value (0 when
// admitting or unarmed), for tests and tooling.
func (a *Aggregator) ShedState() int {
	if a.shed == nil {
		return 0
	}
	return int(a.shed.state.Load())
}
