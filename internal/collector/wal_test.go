package collector

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"starlinkview/internal/wal"
)

// copyWALDir snapshots the on-disk WAL state — what a machine that lost
// power right now would find on restart.
func copyWALDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

func TestOpenAggregatorRejectsDropPolicy(t *testing.T) {
	_, err := OpenAggregator(Config{
		Policy: DropNewest,
		WAL:    WALConfig{Dir: t.TempDir()},
	})
	if err == nil {
		t.Fatal("WAL with DropNewest must be rejected: a logged-then-shed record would resurrect on replay")
	}
}

func TestSyncWALWithoutWAL(t *testing.T) {
	agg := NewAggregator(Config{Shards: 1})
	defer agg.Close()
	if err := agg.SyncWAL(); err != nil {
		t.Fatalf("SyncWAL without a WAL: %v", err)
	}
	if agg.WALStats().Enabled {
		t.Fatal("WALStats.Enabled without a WAL")
	}
	if err := agg.Checkpoint(); !errors.Is(err, ErrNoWAL) {
		t.Fatalf("Checkpoint without a WAL: %v, want ErrNoWAL", err)
	}
}

// TestAggregatorWALHardCrashRecovery kills the aggregator the hard way: the
// WAL directory is copied after a commit barrier — no Close, no final
// checkpoint — and a fresh aggregator opened on the copy must rebuild every
// committed record.
func TestAggregatorWALHardCrashRecovery(t *testing.T) {
	walDir := t.TempDir()
	agg, err := OpenAggregator(Config{
		Shards: 4, QueueLen: 256,
		WAL: WALConfig{Dir: walDir, SegmentBytes: 1 << 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 600
	for i := 0; i < n; i++ {
		city := []string{"London", "Seattle", "Sydney"}[rng.Intn(3)]
		isp := []string{"starlink", "broadband"}[rng.Intn(2)]
		if !agg.OfferExtension(testRecord(rng, city, isp)) {
			t.Fatal("offer failed")
		}
	}
	if err := agg.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	// The crash point: everything committed is on disk, nothing after. The
	// reference state comes from draining the original afterwards — its
	// final checkpoint lands in walDir, not in the copy.
	crashDir := copyWALDir(t, walDir)
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	before := agg.Snapshot()

	recovered, err := OpenAggregator(Config{
		// A different shard count on restart must not matter: checkpoints
		// and replay route by key, not by shard.
		Shards: 7, QueueLen: 256,
		WAL: WALConfig{Dir: crashDir, SegmentBytes: 1 << 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := recovered.WALRecovery()
	if rec.ReplayedRecords != n || rec.RestoredRecords != 0 || rec.SkippedCorrupt != 0 {
		t.Fatalf("recovery %+v, want %d replayed records and no checkpoint", rec, n)
	}
	after := recovered.Snapshot()
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}

	if after.Processed != before.Processed || after.Accepted != before.Accepted {
		t.Fatalf("recovered processed=%d accepted=%d, want %d/%d",
			after.Processed, after.Accepted, before.Processed, before.Accepted)
	}
	if len(after.Groups) != len(before.Groups) {
		t.Fatalf("recovered %d groups, want %d", len(after.Groups), len(before.Groups))
	}
	for i, want := range before.Groups {
		got := after.Groups[i]
		if got.City != want.City || got.ISP != want.ISP ||
			got.Count != want.Count || got.Domains != want.Domains {
			t.Errorf("group %d: got %+v, want %+v", i, got, want)
		}
		// The WAL payload is the dataset row encoding, which stores PTT at
		// millisecond-precision ×10⁻³ (3 decimals), so replayed values are
		// quantised by up to 0.0005 ms. Means shift by at most that;
		// sketch percentiles by that plus the sketch bound.
		if math.Abs(got.MeanPTTMs-want.MeanPTTMs) > 1e-3 {
			t.Errorf("group %s/%s: mean %v, want %v", got.City, got.ISP, got.MeanPTTMs, want.MeanPTTMs)
		}
		if math.Abs(got.P50PTTMs-want.P50PTTMs) > 0.02*want.P50PTTMs+1e-3 {
			t.Errorf("group %s/%s: p50 %v, want %v", got.City, got.ISP, got.P50PTTMs, want.P50PTTMs)
		}
	}
}

// TestAggregatorCheckpointPrunesLog verifies the replay-from-last-checkpoint
// path: after an explicit checkpoint, covered segments are pruned, crash
// recovery restores from the checkpoint, and only post-checkpoint records
// replay.
func TestAggregatorCheckpointPrunesLog(t *testing.T) {
	walDir := t.TempDir()
	agg, err := OpenAggregator(Config{
		Shards: 2, QueueLen: 256,
		WAL: WALConfig{Dir: walDir, SegmentBytes: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const beforeCkpt, afterCkpt = 400, 150
	for i := 0; i < beforeCkpt; i++ {
		if !agg.OfferExtension(testRecord(rng, "London", "starlink")) {
			t.Fatal("offer failed")
		}
	}
	segsBefore := agg.WALStats().Segments
	if err := agg.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := agg.WALStats()
	if st.Checkpoints != 1 || st.LastCheckpointLSN != uint64(beforeCkpt) {
		t.Fatalf("stats after checkpoint: %+v", st)
	}
	if segsBefore > 1 && st.Segments >= segsBefore {
		t.Fatalf("checkpoint kept %d of %d segments, expected pruning", st.Segments, segsBefore)
	}
	for i := 0; i < afterCkpt; i++ {
		if !agg.OfferExtension(testRecord(rng, "Seattle", "broadband")) {
			t.Fatal("offer failed")
		}
	}
	if err := agg.SyncWAL(); err != nil {
		t.Fatal(err)
	}
	crashDir := copyWALDir(t, walDir)
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}

	recovered, err := OpenAggregator(Config{
		Shards: 2, QueueLen: 256,
		WAL: WALConfig{Dir: crashDir, SegmentBytes: 4 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	rec := recovered.WALRecovery()
	if rec.CheckpointLSN != uint64(beforeCkpt) ||
		rec.RestoredRecords != beforeCkpt || rec.ReplayedRecords != afterCkpt {
		t.Fatalf("recovery %+v, want checkpoint at %d plus %d replayed", rec, beforeCkpt, afterCkpt)
	}
	snap := recovered.Snapshot()
	if snap.Processed != beforeCkpt+afterCkpt {
		t.Fatalf("recovered processed=%d, want %d", snap.Processed, beforeCkpt+afterCkpt)
	}
}

// TestAggregatorRecoveryRejectsRelErrMismatch pins the checkpoint guard: a
// checkpoint taken at one sketch accuracy cannot silently feed an
// aggregator configured with another.
func TestAggregatorRecoveryRejectsRelErrMismatch(t *testing.T) {
	walDir := t.TempDir()
	agg, err := OpenAggregator(Config{
		SketchRelErr: 0.01,
		WAL:          WALConfig{Dir: walDir},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	agg.OfferExtension(testRecord(rng, "London", "starlink"))
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenAggregator(Config{
		SketchRelErr: 0.05,
		WAL:          WALConfig{Dir: walDir},
	}); err == nil {
		t.Fatal("recovery with a mismatched sketch error must fail loudly")
	}
}

// TestAggregatorRecoverySkipsCorruptPayload: a durable frame whose payload
// no longer decodes is skipped and counted, never fatal.
func TestAggregatorRecoverySkipsCorruptPayload(t *testing.T) {
	walDir := t.TempDir()
	w, err := wal.Open(wal.Config{Dir: walDir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(99, []byte("not a record kind the collector knows")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(walKindNode, []byte(`{"node":"Wiltshire","kind":"iperf","down_mbps":100}`+"\n")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	agg, err := OpenAggregator(Config{WAL: WALConfig{Dir: walDir}})
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()
	rec := agg.WALRecovery()
	if rec.SkippedCorrupt != 1 || rec.ReplayedRecords != 1 {
		t.Fatalf("recovery %+v, want 1 skipped and 1 replayed", rec)
	}
}
