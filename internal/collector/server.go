package collector

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"starlinkview/internal/dataset"
)

// Wire paths and content types of the ingest protocol. Extension records
// travel as headerless CSV rows (the dataset release schema); node samples
// as JSON lines, exactly as dataset.WriteNodeJSON emits them.
const (
	PathIngestExtension = "/ingest/extension"
	PathIngestNode      = "/ingest/node"
	PathSnapshot        = "/snapshot"
	PathStats           = "/stats"

	extensionContentType = "text/csv"
	nodeContentType      = "application/x-ndjson"
)

// IngestReply is the server's response to an ingest POST.
type IngestReply struct {
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
}

// Server exposes an Aggregator over local HTTP.
type Server struct {
	agg *Aggregator
	hs  *http.Server
	lis net.Listener
	err chan error
}

// NewServer builds a server around a fresh aggregator with the given
// configuration. For WAL-enabled configurations use OpenServer, whose
// startup (log recovery) can fail.
func NewServer(cfg Config) *Server {
	s, err := OpenServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// OpenServer builds a server around OpenAggregator: with Config.WAL set it
// recovers the durable state before serving, and every ingest batch is
// acknowledged only after its records are fsynced.
func OpenServer(cfg Config) (*Server, error) {
	agg, err := OpenAggregator(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{agg: agg, err: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc(PathIngestExtension, s.handleIngestExtension)
	mux.HandleFunc(PathIngestNode, s.handleIngestNode)
	mux.HandleFunc(PathSnapshot, s.handleSnapshot)
	mux.HandleFunc(PathStats, s.handleStats)
	s.hs = &http.Server{Handler: mux}
	return s, nil
}

// Aggregator returns the server's aggregation core.
func (s *Server) Aggregator() *Aggregator { return s.agg }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("collector: listen: %w", err)
	}
	s.lis = lis
	go func() {
		if err := s.hs.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.err <- err
		}
	}()
	return nil
}

// Addr returns the bound listen address, once Start has succeeded.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests finish, then every shard queue drains (and, with a WAL, a final
// checkpoint is written). After it returns, Snapshot reflects every
// accepted record.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	if cerr := s.agg.Close(); err == nil {
		err = cerr
	}
	select {
	case serveErr := <-s.err:
		return serveErr
	default:
	}
	return err
}

func (s *Server) handleIngestExtension(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = len(dataset.ExtensionHeader())
	cr.ReuseRecord = true
	var reply IngestReply
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			ingestError(w, reply, fmt.Sprintf("bad row: %v", err))
			return
		}
		rec, err := dataset.UnmarshalExtensionRow(row)
		if err != nil {
			ingestError(w, reply, fmt.Sprintf("bad record: %v", err))
			return
		}
		if s.agg.OfferExtension(rec) {
			reply.Accepted++
		} else {
			reply.Dropped++
		}
	}
	s.ackIngest(w, reply)
}

func (s *Server) handleIngestNode(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	dec := json.NewDecoder(r.Body)
	var reply IngestReply
	for {
		var sample dataset.NodeSample
		if err := dec.Decode(&sample); err == io.EOF {
			break
		} else if err != nil {
			ingestError(w, reply, fmt.Sprintf("bad sample: %v", err))
			return
		}
		if s.agg.OfferNodeSample(sample) {
			reply.Accepted++
		} else {
			reply.Dropped++
		}
	}
	s.ackIngest(w, reply)
}

// ackIngest is the durability barrier: with a WAL, the 200 is sent only
// once every record in the batch is fsynced (group commit shares one fsync
// across concurrent batches). A sender that gets a 5xx must assume nothing
// and may retry — the protocol is at-least-once.
func (s *Server) ackIngest(w http.ResponseWriter, reply IngestReply) {
	if err := s.agg.SyncWAL(); err != nil {
		writeJSON(w, http.StatusInternalServerError, struct {
			IngestReply
			Error string `json:"error"`
		}{reply, fmt.Sprintf("wal commit: %v", err)})
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// ingestError reports a malformed batch. Rows ingested before the bad one
// are already aggregated; the reply carries the partial counts.
func ingestError(w http.ResponseWriter, reply IngestReply, msg string) {
	writeJSON(w, http.StatusBadRequest, struct {
		IngestReply
		Error string `json:"error"`
	}{reply, msg})
}

// SnapshotReply is the GET /snapshot payload: the merged aggregates plus
// the same city table the batch pipeline prints, for cross-checking
// cmd/starlinkbench results against streamed ingestion.
type SnapshotReply struct {
	TakenAt   time.Time  `json:"taken_at"`
	Snapshot  *Snapshot  `json:"snapshot"`
	CityTable []CityJSON `json:"city_table"`
}

// CityJSON mirrors extension.TableRow with JSON-safe fields (a city whose
// classes have no records yet would otherwise render NaN medians).
type CityJSON struct {
	City              string  `json:"city"`
	StarlinkReqs      int     `json:"starlink_reqs"`
	StarlinkDomains   int     `json:"starlink_domains"`
	StarlinkMedianPTT float64 `json:"starlink_median_ptt_ms"`
	NonSLReqs         int     `json:"non_sl_reqs"`
	NonSLDomains      int     `json:"non_sl_domains"`
	NonSLMedianPTT    float64 `json:"non_sl_median_ptt_ms"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.agg.Snapshot()
	reply := SnapshotReply{TakenAt: time.Now().UTC(), Snapshot: snap}
	for _, row := range snap.CityTable(snap.Cities()) {
		reply.CityTable = append(reply.CityTable, CityJSON{
			City:              row.City,
			StarlinkReqs:      row.StarlinkReqs,
			StarlinkDomains:   row.StarlinkDomains,
			StarlinkMedianPTT: nanZero(row.StarlinkMedianPTT),
			NonSLReqs:         row.NonSLReqs,
			NonSLDomains:      row.NonSLDomains,
			NonSLMedianPTT:    nanZero(row.NonSLMedianPTT),
		})
	}
	writeJSON(w, http.StatusOK, reply)
}

// StatsReply is the GET /stats payload. WAL is present only on durable
// servers.
type StatsReply struct {
	Accepted  uint64       `json:"accepted"`
	Dropped   uint64       `json:"dropped"`
	Processed uint64       `json:"processed"`
	Shards    []ShardStats `json:"shards"`
	WAL       *WALStats    `json:"wal,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := s.agg.Snapshot()
	reply := StatsReply{
		Accepted:  snap.Accepted,
		Dropped:   snap.Dropped,
		Processed: snap.Processed,
		Shards:    snap.Shards,
	}
	if ws := s.agg.WALStats(); ws.Enabled {
		reply.WAL = &ws
	}
	writeJSON(w, http.StatusOK, reply)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
