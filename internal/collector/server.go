package collector

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
)

// Wire paths and content types of the ingest protocol. Extension records
// travel as headerless CSV rows (the dataset release schema); node samples
// as JSON lines, exactly as dataset.WriteNodeJSON emits them.
const (
	PathIngestExtension = "/ingest/extension"
	PathIngestBatch     = "/ingest/batch"
	PathIngestNode      = "/ingest/node"
	PathSnapshot        = "/snapshot"
	PathStats           = "/stats"
	PathMetrics         = "/metrics"
	PathHealthz         = "/healthz"
	PathTraces          = "/traces"

	// ExtensionContentType and NodeContentType are the ingest body MIME
	// types — exported so cluster forwarding speaks the same wire protocol.
	// BatchContentType bodies are concatenated dataset batch frames
	// (dataset.MarshalBatch), the columnar fast path.
	ExtensionContentType = "text/csv"
	BatchContentType     = "application/x-starlink-batch"
	NodeContentType      = "application/x-ndjson"
)

// HeaderForwarded marks an ingest POST as a cluster forward. A batch
// carrying it is applied locally whatever the receiver's ring says — the
// terminal hop of the forward-on-misroute protocol, which guarantees a
// record is never relayed twice even when two instances hold different
// ring views.
const HeaderForwarded = "X-Starlinkview-Forwarded"

// IngestReply is the server's response to an ingest POST. Forwarded counts
// records that belonged to another cluster instance and were relayed there
// (and accepted) before this acknowledgement.
type IngestReply struct {
	Accepted  int `json:"accepted"`
	Dropped   int `json:"dropped"`
	Forwarded int `json:"forwarded,omitempty"`
}

// Forwarder routes misrouted records to their owning cluster instance; the
// implementation lives in internal/cluster. Owner* return the owning
// peer's advertise address, or "" when this instance owns the key — the
// hot-path check the ingest handlers make per record. Forward* deliver a
// misrouted sub-batch synchronously and return how many records the owner
// accepted; the ingest acknowledgement waits on them, so a 200 means every
// record in the batch is owned (and, with WALs, durable) somewhere.
type Forwarder interface {
	OwnerExtension(r extension.Record) string
	OwnerNode(s dataset.NodeSample) string
	ForwardExtension(peer string, recs []extension.Record, parent trace.SpanContext) (int, error)
	ForwardNode(peer string, samples []dataset.NodeSample, parent trace.SpanContext) (int, error)
}

// Server exposes an Aggregator over local HTTP.
type Server struct {
	agg *Aggregator
	hs  *http.Server
	mux *http.ServeMux
	lis net.Listener
	err chan error

	// fwdMu guards fwd: SetForwarder runs once at cluster start-up, readers
	// resolve it once per ingest request.
	fwdMu sync.RWMutex
	fwd   Forwarder
}

// NewServer builds a server around a fresh aggregator with the given
// configuration. For WAL-enabled configurations use OpenServer, whose
// startup (log recovery) can fail.
func NewServer(cfg Config) *Server {
	s, err := OpenServer(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// OpenServer builds a server around OpenAggregator: with Config.WAL set it
// recovers the durable state before serving, and every ingest batch is
// acknowledged only after its records are fsynced.
func OpenServer(cfg Config) (*Server, error) {
	agg, err := OpenAggregator(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{agg: agg, err: make(chan error, 1)}
	mux := http.NewServeMux()
	mux.HandleFunc(PathIngestExtension, s.instrument(PathIngestExtension, s.handleIngestExtension))
	mux.HandleFunc(PathIngestBatch, s.instrument(PathIngestBatch, s.handleIngestBatch))
	mux.HandleFunc(PathIngestNode, s.instrument(PathIngestNode, s.handleIngestNode))
	mux.HandleFunc(PathSnapshot, s.instrument(PathSnapshot, s.handleSnapshot))
	mux.HandleFunc(PathStats, s.instrument(PathStats, s.handleStats))
	mux.HandleFunc(PathMetrics, s.instrument(PathMetrics, agg.Registry().Handler().ServeHTTP))
	mux.HandleFunc(PathHealthz, s.instrument(PathHealthz, s.handleHealthz))
	if cfg.Tracer != nil {
		mux.HandleFunc(PathTraces, s.instrument(PathTraces, trace.Handler(cfg.Tracer).ServeHTTP))
	}
	s.mux = mux
	s.hs = &http.Server{Handler: mux}
	return s, nil
}

// Handle registers an additional handler on the server's mux, instrumented
// with the same per-path HTTP metrics and root spans as the built-in
// endpoints. The cluster layer mounts /cluster/* this way.
func (s *Server) Handle(path string, h http.HandlerFunc) {
	s.mux.HandleFunc(path, s.instrument(path, h))
}

// SetForwarder makes the ingest handlers cluster-aware: each decoded record
// is checked against the forwarder's ring and relayed to its owner when it
// does not belong here. Call before traffic arrives.
func (s *Server) SetForwarder(f Forwarder) {
	s.fwdMu.Lock()
	s.fwd = f
	s.fwdMu.Unlock()
}

func (s *Server) forwarder() Forwarder {
	s.fwdMu.RLock()
	defer s.fwdMu.RUnlock()
	return s.fwd
}

// statusWriter remembers the status code a handler sent so the HTTP
// metrics can label requests with it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the http_requests_total and
// http_request_duration_seconds series for its path, and — with a tracer
// configured — opens the request's root span, continuing an incoming W3C
// traceparent (so a load generator's forced-sample flag survives into the
// tail sampler's keep decision).
func (s *Server) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	m := s.agg.met
	duration := m.httpDuration.With(path)
	tracer := s.agg.cfg.Tracer
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		var sp *trace.Span
		if tracer != nil {
			parent, _ := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
			sp = tracer.StartRoot("http "+r.Method+" "+path, parent)
			sp.SetAttr("path", path)
			r = r.WithContext(trace.NewContext(r.Context(), sp))
		}
		h(sw, r)
		duration.Observe(time.Since(start).Seconds())
		m.httpRequests.With(path, strconv.Itoa(sw.status)).Inc()
		if sp != nil {
			sp.SetInt("status", int64(sw.status))
			if sw.status >= http.StatusInternalServerError {
				sp.SetError(fmt.Errorf("http status %d", sw.status))
			}
			sp.Finish()
		}
	}
}

// Aggregator returns the server's aggregation core.
func (s *Server) Aggregator() *Aggregator { return s.agg }

// Start listens on addr (e.g. "127.0.0.1:0") and serves in the background.
func (s *Server) Start(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("collector: listen: %w", err)
	}
	s.lis = lis
	go func() {
		if err := s.hs.Serve(lis); err != nil && err != http.ErrServerClosed {
			s.err <- err
		}
	}()
	return nil
}

// Addr returns the bound listen address, once Start has succeeded.
func (s *Server) Addr() string {
	if s.lis == nil {
		return ""
	}
	return s.lis.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Shutdown gracefully stops the server: no new connections, in-flight
// requests finish, then every shard queue drains (and, with a WAL, a final
// checkpoint is written). After it returns, Snapshot reflects every
// accepted record.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.hs.Shutdown(ctx)
	if cerr := s.agg.Close(); err == nil {
		err = cerr
	}
	select {
	case serveErr := <-s.err:
		return serveErr
	default:
	}
	return err
}

func (s *Server) handleIngestExtension(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if reason, ok := s.admitIngest(r); !ok {
		shedReject(w, r, reason)
		return
	}
	fwd := s.ingestForwarder(r)
	cr := csv.NewReader(r.Body)
	cr.FieldsPerRecord = len(dataset.ExtensionHeader())
	cr.ReuseRecord = true
	decode := s.startDecode(r)
	var reply IngestReply
	var byPeer map[string][]extension.Record
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad row: %v", err))
			return
		}
		rec, err := dataset.UnmarshalExtensionRow(row)
		if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad record: %v", err))
			return
		}
		if fwd != nil {
			if peer := fwd.OwnerExtension(rec); peer != "" {
				if byPeer == nil {
					byPeer = make(map[string][]extension.Record)
				}
				byPeer[peer] = append(byPeer[peer], rec)
				continue
			}
		}
		if s.agg.OfferExtensionSpan(rec, representative(decode, reply)) {
			reply.Accepted++
		} else {
			reply.Dropped++
		}
	}
	finishDecode(decode, reply)
	for peer, recs := range byPeer {
		n, err := fwd.ForwardExtension(peer, recs, rootContext(r))
		reply.Forwarded += n
		if err != nil {
			forwardError(w, reply, peer, err)
			return
		}
	}
	s.ackIngest(w, r, reply, start)
}

// admitIngest asks the shed controller whether the request may enter. The
// sampled bit rides the request's traceparent: via the root span when
// tracing is on, parsed straight off the header otherwise — so batch
// frames and CSV bodies alike carry their keep-this signal in-band.
func (s *Server) admitIngest(r *http.Request) (string, bool) {
	if s.agg.shed == nil {
		return "", true
	}
	return s.agg.shed.admit(requestSampled(r))
}

// requestSampled derives the request's traceparent sampled bit.
func requestSampled(r *http.Request) bool {
	if root := trace.FromContext(r.Context()); root != nil {
		return root.Context().Sampled
	}
	sc, err := trace.ParseTraceparent(r.Header.Get(trace.TraceparentHeader))
	return err == nil && sc.Sampled
}

// shedReject answers a shed request: 429 + Retry-After, a zero reply (no
// record entered), and a shed event on the root span so the kept traces
// show exactly when admission control cut in.
func shedReject(w http.ResponseWriter, r *http.Request, reason string) {
	if root := trace.FromContext(r.Context()); root != nil {
		root.Event("shed", trace.Str("reason", reason))
		root.SetAttr("shed", reason)
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, struct {
		IngestReply
		Error string `json:"error"`
	}{IngestReply{}, "overloaded: unsampled request shed (" + reason + ")"})
}

// ingestForwarder resolves the forwarder an ingest request routes through:
// nil on a plain single-instance server, and nil for batches already
// forwarded by a peer — a forwarded record is applied where it lands, so a
// stale ring view costs one extra hop, never a loop.
func (s *Server) ingestForwarder(r *http.Request) Forwarder {
	fwd := s.forwarder()
	if fwd == nil || r.Header.Get(HeaderForwarded) != "" {
		return nil
	}
	return fwd
}

// rootContext returns the request's root span context (zero when untraced).
func rootContext(r *http.Request) trace.SpanContext {
	if root := trace.FromContext(r.Context()); root != nil {
		return root.Context()
	}
	return trace.SpanContext{}
}

// forwardError reports a batch whose misrouted records could not all be
// relayed. Locally-owned records are already aggregated (and will be made
// durable); the sender must treat the batch as unacknowledged and may
// retry — ingest is at-least-once.
func forwardError(w http.ResponseWriter, reply IngestReply, peer string, err error) {
	writeJSON(w, http.StatusBadGateway, struct {
		IngestReply
		Error string `json:"error"`
	}{reply, fmt.Sprintf("forward to %s: %v", peer, err)})
}

// startDecode opens the batch-decode span under the request's root span
// (nil without a tracer, and then every downstream span call is a no-op).
func (s *Server) startDecode(r *http.Request) *trace.Span {
	root := trace.FromContext(r.Context())
	if root == nil {
		return nil
	}
	return s.agg.cfg.Tracer.StartChild(root.Context(), "ingest.decode")
}

// representative picks the span context the batch threads through the shard
// queue: the first accepted record carries the decode span, the rest a zero
// context — one shard.apply span per batch, one branch per record.
func representative(decode *trace.Span, reply IngestReply) trace.SpanContext {
	if decode == nil || reply.Accepted > 0 {
		return trace.SpanContext{}
	}
	return decode.Context()
}

func finishDecode(decode *trace.Span, reply IngestReply) {
	if decode == nil {
		return
	}
	decode.SetInt("accepted", int64(reply.Accepted))
	decode.SetInt("dropped", int64(reply.Dropped))
	decode.Finish()
}

func (s *Server) handleIngestNode(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if reason, ok := s.admitIngest(r); !ok {
		shedReject(w, r, reason)
		return
	}
	fwd := s.ingestForwarder(r)
	dec := json.NewDecoder(r.Body)
	decode := s.startDecode(r)
	var reply IngestReply
	var byPeer map[string][]dataset.NodeSample
	for {
		var sample dataset.NodeSample
		if err := dec.Decode(&sample); err == io.EOF {
			break
		} else if err != nil {
			decode.SetError(err)
			decode.Finish()
			ingestError(w, reply, fmt.Sprintf("bad sample: %v", err))
			return
		}
		if fwd != nil {
			if peer := fwd.OwnerNode(sample); peer != "" {
				if byPeer == nil {
					byPeer = make(map[string][]dataset.NodeSample)
				}
				byPeer[peer] = append(byPeer[peer], sample)
				continue
			}
		}
		if s.agg.OfferNodeSampleSpan(sample, representative(decode, reply)) {
			reply.Accepted++
		} else {
			reply.Dropped++
		}
	}
	finishDecode(decode, reply)
	for peer, samples := range byPeer {
		n, err := fwd.ForwardNode(peer, samples, rootContext(r))
		reply.Forwarded += n
		if err != nil {
			forwardError(w, reply, peer, err)
			return
		}
	}
	s.ackIngest(w, r, reply, start)
}

// ackIngest is the durability barrier: with a WAL, the 200 is sent only
// once every record in the batch is fsynced (group commit shares one fsync
// across concurrent batches). A sender that gets a 5xx must assume nothing
// and may retry — the protocol is at-least-once. The group-commit wait is
// spanned as wal.fsync under the request's root, and the ack-latency
// histogram carries the trace as an exemplar.
func (s *Server) ackIngest(w http.ResponseWriter, r *http.Request, reply IngestReply, start time.Time) {
	root := trace.FromContext(r.Context())
	var fsync *trace.Span
	if root != nil && s.agg.wal != nil {
		fsync = s.agg.cfg.Tracer.StartChild(root.Context(), "wal.fsync")
	}
	err := s.agg.SyncWAL()
	fsync.SetError(err)
	fsync.Finish()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, struct {
			IngestReply
			Error string `json:"error"`
		}{reply, fmt.Sprintf("wal commit: %v", err)})
		return
	}
	if root != nil {
		s.agg.met.ackLatency.ObserveExemplar(time.Since(start).Seconds(), root.Context().Trace.String())
	} else {
		s.agg.met.ackLatency.Observe(time.Since(start).Seconds())
	}
	writeJSON(w, http.StatusOK, reply)
}

// ingestError reports a malformed batch. Rows ingested before the bad one
// are already aggregated; the reply carries the partial counts.
func ingestError(w http.ResponseWriter, reply IngestReply, msg string) {
	writeJSON(w, http.StatusBadRequest, struct {
		IngestReply
		Error string `json:"error"`
	}{reply, msg})
}

// SnapshotReply is the GET /snapshot payload: the merged aggregates plus
// the same city table the batch pipeline prints, for cross-checking
// cmd/starlinkbench results against streamed ingestion.
type SnapshotReply struct {
	TakenAt   time.Time  `json:"taken_at"`
	Snapshot  *Snapshot  `json:"snapshot"`
	CityTable []CityJSON `json:"city_table"`
}

// CityJSON mirrors extension.TableRow with JSON-safe fields (a city whose
// classes have no records yet would otherwise render NaN medians).
type CityJSON struct {
	City              string  `json:"city"`
	StarlinkReqs      int     `json:"starlink_reqs"`
	StarlinkDomains   int     `json:"starlink_domains"`
	StarlinkMedianPTT float64 `json:"starlink_median_ptt_ms"`
	NonSLReqs         int     `json:"non_sl_reqs"`
	NonSLDomains      int     `json:"non_sl_domains"`
	NonSLMedianPTT    float64 `json:"non_sl_median_ptt_ms"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	snap := s.agg.Snapshot()
	writeJSON(w, http.StatusOK, SnapshotReply{
		TakenAt:   time.Now().UTC(),
		Snapshot:  snap,
		CityTable: snap.CityTableJSON(),
	})
}

// CityTableJSON renders the snapshot's per-city table in the JSON-safe form
// /snapshot serves; the cluster merged-query endpoint reuses it so a merged
// snapshot and a single-instance one are comparable field for field.
func (s *Snapshot) CityTableJSON() []CityJSON {
	var out []CityJSON
	for _, row := range s.CityTable(s.Cities()) {
		out = append(out, CityJSON{
			City:              row.City,
			StarlinkReqs:      row.StarlinkReqs,
			StarlinkDomains:   row.StarlinkDomains,
			StarlinkMedianPTT: nanZero(row.StarlinkMedianPTT),
			NonSLReqs:         row.NonSLReqs,
			NonSLDomains:      row.NonSLDomains,
			NonSLMedianPTT:    nanZero(row.NonSLMedianPTT),
		})
	}
	return out
}

// StatsReply is the GET /stats payload. WAL is present only on durable
// servers.
type StatsReply struct {
	Accepted  uint64       `json:"accepted"`
	Dropped   uint64       `json:"dropped"`
	Processed uint64       `json:"processed"`
	Shards    []ShardStats `json:"shards"`
	WAL       *WALStats    `json:"wal,omitempty"`
}

// handleStats derives the JSON from the same registry children /metrics
// renders — shard counters are read in place, no snapshot round-trip.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.agg.Stats())
}

// handleHealthz answers 200 once startup recovery completed and the WAL
// writer is healthy, 503 otherwise (e.g. a failed fsync poisoned the
// writer: nothing further can be made durable, so the collector should be
// pulled from rotation).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.agg.Health(); err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "unhealthy: %v\n", err)
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
