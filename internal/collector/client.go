package collector

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
	"starlinkview/internal/trace"
)

// Wire selects the extension-record encoding a client puts on the wire.
type Wire int

const (
	// WireCSV sends per-record CSV rows to PathIngestExtension (default).
	WireCSV Wire = iota
	// WireBatch sends columnar frames (dataset.MarshalBatch) to
	// PathIngestBatch — the fast path for high-volume streams.
	WireBatch
)

// String implements fmt.Stringer.
func (w Wire) String() string {
	switch w {
	case WireCSV:
		return "csv"
	case WireBatch:
		return "batch"
	default:
		return fmt.Sprintf("wire(%d)", int(w))
	}
}

// ParseWire converts a CLI flag value to a Wire.
func ParseWire(s string) (Wire, error) {
	switch s {
	case "csv":
		return WireCSV, nil
	case "batch":
		return WireBatch, nil
	default:
		return 0, fmt.Errorf("collector: unknown wire format %q (want csv or batch)", s)
	}
}

// ClientConfig tunes the batching ingest client.
type ClientConfig struct {
	// Wire selects the extension-record encoding (default WireCSV).
	Wire Wire
	// BatchSize flushes a buffer once it holds this many records
	// (default 512).
	BatchSize int
	// FlushEvery flushes non-empty buffers on this period even when they
	// are short of BatchSize (default 200ms). Zero disables the timer;
	// flushes then happen on size and on Close only.
	FlushEvery time.Duration
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// Traceparent, if set, runs once per POST; a non-empty result is sent
	// as the W3C traceparent header, so a traced server parents its spans
	// under the caller's trace (and keeps it, when the sampled flag is
	// set). Return "" to leave a request unsampled.
	Traceparent func() string
}

func (c *ClientConfig) normalize() {
	if c.BatchSize <= 0 {
		c.BatchSize = 512
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
}

// ClientStats summarise a client's sends. Latencies are wall-clock per
// POST, in microseconds.
type ClientStats struct {
	Records uint64
	Batches uint64
	Latency *stats.QuantileSketch
}

// Client batches records and ships them to a collector Server. Adds flush
// on size; a background timer flushes stragglers on ClientConfig.FlushEvery;
// Close flushes whatever remains. Safe for use by one goroutine at a time
// (loadgen gives each worker its own client).
type Client struct {
	base string
	cfg  ClientConfig

	mu      sync.Mutex
	ext     []extension.Record
	nodes   []dataset.NodeSample
	enc     dataset.BatchEncoder
	records uint64
	batches uint64
	latency *stats.QuantileSketch

	stop chan struct{}
	done chan struct{}
}

// NewClient builds a client for the server at baseURL (e.g. Server.URL()).
func NewClient(baseURL string, cfg ClientConfig) *Client {
	cfg.normalize()
	lat, _ := stats.NewQuantileSketch(stats.DefaultSketchRelErr)
	c := &Client{
		base:    baseURL,
		cfg:     cfg,
		latency: lat,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.flushLoop()
	return c
}

func (c *Client) flushLoop() {
	defer close(c.done)
	if c.cfg.FlushEvery <= 0 {
		<-c.stop
		return
	}
	t := time.NewTicker(c.cfg.FlushEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Timer flushes are best-effort; Add and Close surface errors.
			_ = c.Flush()
		case <-c.stop:
			return
		}
	}
}

// AddRecord buffers one browsing record, flushing if the batch is full.
func (c *Client) AddRecord(r extension.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ext = append(c.ext, r)
	if len(c.ext) >= c.cfg.BatchSize {
		return c.flushExtLocked()
	}
	return nil
}

// AddNodeSample buffers one node sample, flushing if the batch is full.
func (c *Client) AddNodeSample(s dataset.NodeSample) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes = append(c.nodes, s)
	if len(c.nodes) >= c.cfg.BatchSize {
		return c.flushNodesLocked()
	}
	return nil
}

// Flush sends both pending buffers.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.flushExtLocked(); err != nil {
		return err
	}
	return c.flushNodesLocked()
}

func (c *Client) flushExtLocked() error {
	if len(c.ext) == 0 {
		return nil
	}
	if c.cfg.Wire == WireBatch {
		// The reusable encoder's frame is valid until its next Encode, which
		// cannot happen before this post returns (both run under mu).
		frame := c.enc.Encode(c.ext)
		n := len(c.ext)
		c.ext = c.ext[:0]
		return c.post(PathIngestBatch, BatchContentType, bytes.NewReader(frame), n)
	}
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	for _, r := range c.ext {
		if err := cw.Write(dataset.MarshalExtensionRow(r)); err != nil {
			return fmt.Errorf("collector: encode: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("collector: encode: %w", err)
	}
	n := len(c.ext)
	c.ext = c.ext[:0]
	return c.post(PathIngestExtension, ExtensionContentType, &buf, n)
}

func (c *Client) flushNodesLocked() error {
	if len(c.nodes) == 0 {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range c.nodes {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("collector: encode: %w", err)
		}
	}
	n := len(c.nodes)
	c.nodes = c.nodes[:0]
	return c.post(PathIngestNode, NodeContentType, &buf, n)
}

// EncodeExtensionBatch renders records as one wire payload, the body a
// single POST to PathIngestExtension carries. Load generators encode their
// replay set once and resend the payloads, keeping the client side cheap.
func EncodeExtensionBatch(records []extension.Record) ([]byte, error) {
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	for _, r := range records {
		if err := cw.Write(dataset.MarshalExtensionRow(r)); err != nil {
			return nil, fmt.Errorf("collector: encode: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, fmt.Errorf("collector: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// SendExtensionBatch posts a pre-encoded batch of n records, bypassing the
// client's buffer but sharing its latency and throughput accounting.
func (c *Client) SendExtensionBatch(payload []byte, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.post(PathIngestExtension, ExtensionContentType, bytes.NewReader(payload), n)
}

// SendExtensionFrames posts pre-encoded columnar frames (concatenated
// dataset.MarshalBatch output) holding n records in total.
func (c *Client) SendExtensionFrames(payload []byte, n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.post(PathIngestBatch, BatchContentType, bytes.NewReader(payload), n)
}

func (c *Client) post(path, contentType string, body io.Reader, n int) error {
	start := time.Now()
	req, err := http.NewRequest(http.MethodPost, c.base+path, body)
	if err != nil {
		return fmt.Errorf("collector: post %s: %w", path, err)
	}
	req.Header.Set("Content-Type", contentType)
	if c.cfg.Traceparent != nil {
		if tp := c.cfg.Traceparent(); tp != "" {
			req.Header.Set(trace.TraceparentHeader, tp)
		}
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("collector: post %s: %w", path, err)
	}
	defer resp.Body.Close()
	c.latency.Add(float64(time.Since(start)) / float64(time.Microsecond))
	c.batches++
	c.records += uint64(n)
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("collector: post %s: %w", path, NewOverloadedError(resp, string(msg)))
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("collector: post %s: %s: %s", path, resp.Status, msg)
	}
	// Drain so the connection is reused.
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// Stats returns a copy of the client's send counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ClientStats{Records: c.records, Batches: c.batches, Latency: c.latency.Clone()}
}

// Close stops the flush timer and sends anything still buffered.
func (c *Client) Close() error {
	select {
	case <-c.stop:
	default:
		close(c.stop)
	}
	<-c.done
	return c.Flush()
}
