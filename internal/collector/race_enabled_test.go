//go:build race

package collector

// raceEnabled reports whether the race detector is compiled in; allocation
// budgets are meaningless under its instrumentation.
const raceEnabled = true
