package collector

import (
	"strconv"
	"time"

	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
)

// metrics is the collector's whole metric surface, registered against one
// obs.Registry. Every counter the collector exposes — on /metrics and in
// the /stats JSON — lives here; there is no parallel set of atomics, so
// the two endpoints can never disagree.
//
// Hot-path children (per-shard accepted/dropped/processed counters, the
// apply-latency histogram) are resolved once at shard construction and
// cached on the shard, so the per-record cost is the atomic add alone.
type metrics struct {
	reg *obs.Registry

	// Ingest path.
	ingestRecords *obs.CounterVec   // ingest_records_total{source,shard}
	ingestDropped *obs.CounterVec   // ingest_dropped_records_total{source,shard}
	processed     *obs.CounterVec   // collector_processed_records_total{shard}
	queueDepth    *obs.GaugeVec     // collector_shard_queue_depth{shard}
	groups        *obs.GaugeVec     // collector_shard_groups{shard}
	applyLatency  *obs.HistogramVec // collector_apply_latency_seconds{shard}
	ackLatency    *obs.Histogram    // ingest_ack_latency_seconds
	ready         *obs.Gauge        // collector_ready

	// HTTP front end.
	httpRequests *obs.CounterVec   // http_requests_total{path,code}
	httpDuration *obs.HistogramVec // http_request_duration_seconds{path}

	// Durability (series appear only on WAL-enabled collectors).
	walAppends       *obs.Counter   // wal_appends_total
	walAppendedBytes *obs.Counter   // wal_appended_bytes_total
	walFsyncs        *obs.Counter   // wal_fsyncs_total
	walFsyncDuration *obs.Histogram // wal_fsync_duration_seconds
	walCommitBatch   *obs.Histogram // wal_commit_batch_records
	walCommitWait    *obs.Histogram // wal_commit_wait_seconds
	walRotations     *obs.Counter   // wal_rotations_total
	walCheckpoints   *obs.Counter   // wal_checkpoints_total

	walSegments      *obs.Gauge // wal_segments
	walAppendedLSN   *obs.Gauge // wal_appended_lsn
	walDurableLSN    *obs.Gauge // wal_durable_lsn
	walCheckpointLSN *obs.Gauge // wal_last_checkpoint_lsn

	// Startup recovery, set once after OpenAggregator replays the log.
	recSegments  *obs.Gauge // wal_recovery_segments
	recRecords   *obs.Gauge // wal_recovery_log_records
	recTornBytes *obs.Gauge // wal_recovery_truncated_bytes
	recRemoved   *obs.Gauge // wal_recovery_removed_segments
	recRestored  *obs.Gauge // wal_recovery_restored_records
	recReplayed  *obs.Gauge // wal_recovery_replayed_records
	recSkipped   *obs.Gauge // wal_recovery_skipped_records
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		reg: reg,
		ingestRecords: reg.CounterVec("ingest_records_total",
			"Records accepted into shard queues.", "source", "shard"),
		ingestDropped: reg.CounterVec("ingest_dropped_records_total",
			"Records shed by queue pressure, closure or WAL failure.", "source", "shard"),
		processed: reg.CounterVec("collector_processed_records_total",
			"Records applied to shard aggregates.", "shard"),
		queueDepth: reg.GaugeVec("collector_shard_queue_depth",
			"Records waiting in the shard's bounded queue.", "shard"),
		groups: reg.GaugeVec("collector_shard_groups",
			"Distinct aggregation groups owned by the shard.", "shard"),
		applyLatency: reg.HistogramVec("collector_apply_latency_seconds",
			"Time records spent queued before their shard applied them.",
			nil, "shard"),
		ackLatency: reg.Histogram("ingest_ack_latency_seconds",
			"Ingest batch latency from request start to (fsynced) acknowledgement.", nil),
		ready: reg.Gauge("collector_ready",
			"1 once recovery completed and the WAL is healthy, else 0."),
		httpRequests: reg.CounterVec("http_requests_total",
			"HTTP requests served, by path and status code.", "path", "code"),
		httpDuration: reg.HistogramVec("http_request_duration_seconds",
			"HTTP request duration, by path.", nil, "path"),
		walAppends: reg.Counter("wal_appends_total",
			"Records appended to the write-ahead log."),
		walAppendedBytes: reg.Counter("wal_appended_bytes_total",
			"Framed bytes appended to the write-ahead log."),
		walFsyncs: reg.Counter("wal_fsyncs_total",
			"Fsyncs issued by the log writer."),
		walFsyncDuration: reg.Histogram("wal_fsync_duration_seconds",
			"Duration of log flush+fsync calls.", nil),
		walCommitBatch: reg.Histogram("wal_commit_batch_records",
			"Records made durable per fsync (the group-commit batch size).",
			obs.DefSizeBuckets),
		walCommitWait: reg.Histogram("wal_commit_wait_seconds",
			"Time Commit callers blocked waiting for their covering fsync.", nil),
		walRotations: reg.Counter("wal_rotations_total",
			"Segment rotations performed."),
		walCheckpoints: reg.Counter("wal_checkpoints_total",
			"Shard-snapshot checkpoints persisted."),
		walSegments: reg.Gauge("wal_segments",
			"Live segment files in the log directory."),
		walAppendedLSN: reg.Gauge("wal_appended_lsn",
			"Highest LSN handed out by Append."),
		walDurableLSN: reg.Gauge("wal_durable_lsn",
			"Highest fsynced LSN."),
		walCheckpointLSN: reg.Gauge("wal_last_checkpoint_lsn",
			"LSN covered by the most recent checkpoint."),
		recSegments: reg.Gauge("wal_recovery_segments",
			"Segment files scanned by startup recovery."),
		recRecords: reg.Gauge("wal_recovery_log_records",
			"Valid frames found across segments at startup."),
		recTornBytes: reg.Gauge("wal_recovery_truncated_bytes",
			"Torn-tail bytes truncated by startup recovery."),
		recRemoved: reg.Gauge("wal_recovery_removed_segments",
			"Stranded segments discarded by startup recovery."),
		recRestored: reg.Gauge("wal_recovery_restored_records",
			"Records restored from the checkpoint at startup."),
		recReplayed: reg.Gauge("wal_recovery_replayed_records",
			"Records re-applied from the log tail at startup."),
		recSkipped: reg.Gauge("wal_recovery_skipped_records",
			"Durable frames whose payloads failed to decode during replay."),
	}
}

// shardMetrics are one shard's cached metric children, indexed by itemKind
// where a source split exists so the offer path stays branch-free.
type shardMetrics struct {
	accepted     [2]*obs.Counter
	dropped      [2]*obs.Counter
	processed    *obs.Counter
	queueDepth   *obs.Gauge
	groups       *obs.Gauge
	applyLatency *obs.Histogram
}

func (m *metrics) shard(id int) shardMetrics {
	s := strconv.Itoa(id)
	return shardMetrics{
		accepted: [2]*obs.Counter{
			itemExtension: m.ingestRecords.With("extension", s),
			itemNode:      m.ingestRecords.With("node", s),
		},
		dropped: [2]*obs.Counter{
			itemExtension: m.ingestDropped.With("extension", s),
			itemNode:      m.ingestDropped.With("node", s),
		},
		processed:    m.processed.With(s),
		queueDepth:   m.queueDepth.With(s),
		groups:       m.groups.With(s),
		applyLatency: m.applyLatency.With(s),
	}
}

// walInstrumentation adapts the metric set to the WAL's dependency-free
// hook. The callbacks run under the writer's mutex: atomic adds only.
func (m *metrics) walInstrumentation() wal.Instrumentation {
	return wal.Instrumentation{
		Append: func(bytes int) {
			m.walAppends.Inc()
			m.walAppendedBytes.Add(uint64(bytes))
		},
		Sync: func(d time.Duration, records uint64) {
			m.walFsyncs.Inc()
			m.walFsyncDuration.Observe(d.Seconds())
			if records > 0 {
				m.walCommitBatch.Observe(float64(records))
			}
		},
		Rotate:     func() { m.walRotations.Inc() },
		CommitWait: func(d time.Duration) { m.walCommitWait.Observe(d.Seconds()) },
	}
}

// registerTracerGauges mirrors the tracer's own counters into scrape-time
// gauges, so the sampling behaviour (kept vs dropped traces, span volume)
// is visible on the same /metrics page as the latencies the spans explain.
func registerTracerGauges(reg *obs.Registry, t *trace.Tracer) {
	started := reg.Gauge("trace_started_spans",
		"Spans started by the request tracer.")
	finished := reg.Gauge("trace_finished_spans",
		"Spans finished and handed to the trace store.")
	kept := reg.Gauge("trace_kept_traces",
		"Traces kept by the tail sampler (errors, forced, slowest-N%).")
	droppedTraces := reg.Gauge("trace_dropped_traces",
		"Completed or evicted traces the tail sampler discarded.")
	droppedSpans := reg.Gauge("trace_dropped_spans",
		"Spans discarded after their trace's drop decision or span cap.")
	reg.OnGather(func() {
		st := t.Stats()
		started.Set(float64(st.StartedSpans))
		finished.Set(float64(st.FinishedSpans))
		kept.Set(float64(st.KeptTraces))
		droppedTraces.Set(float64(st.DroppedTraces))
		droppedSpans.Set(float64(st.DroppedSpans))
	})
}

// setRecovery publishes what startup recovery rebuilt.
func (m *metrics) setRecovery(rec WALRecovery) {
	m.recSegments.Set(float64(rec.Log.Segments))
	m.recRecords.Set(float64(rec.Log.Records))
	m.recTornBytes.Set(float64(rec.Log.TornBytes))
	m.recRemoved.Set(float64(rec.Log.RemovedSegments))
	m.recRestored.Set(float64(rec.RestoredRecords))
	m.recReplayed.Set(float64(rec.ReplayedRecords))
	m.recSkipped.Set(float64(rec.SkippedCorrupt))
}
