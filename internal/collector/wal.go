package collector

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
	"starlinkview/internal/wal"
)

// WAL record kinds: the payloads reuse the dataset release encodings, so a
// WAL segment is itself a replayable dataset — extension records as the CSV
// rows dataset.MarshalExtensionRow emits, node samples as the JSON lines of
// dataset.WriteNodeJSON.
const (
	walKindExtension byte = 1
	walKindNode      byte = 2
)

// WALKindExtension and WALKindNode are the record kinds exported for
// offline log consumers — cluster compaction rereads sealed segments with
// them to turn cold WAL data back into release-format datasets.
const (
	WALKindExtension = walKindExtension
	WALKindNode      = walKindNode
)

// DecodeWALExtension parses a walKindExtension payload (one dataset CSV
// row) back into the record it logged.
func DecodeWALExtension(payload []byte) (extension.Record, error) {
	cr := csv.NewReader(bytes.NewReader(payload))
	cr.FieldsPerRecord = len(dataset.ExtensionHeader())
	row, err := cr.Read()
	if err != nil {
		return extension.Record{}, fmt.Errorf("collector: wal row: %w", err)
	}
	return dataset.UnmarshalExtensionRow(row)
}

// DecodeWALNode parses a walKindNode payload (one JSON line) back into the
// sample it logged.
func DecodeWALNode(payload []byte) (dataset.NodeSample, error) {
	var s dataset.NodeSample
	if err := json.Unmarshal(bytes.TrimSpace(payload), &s); err != nil {
		return dataset.NodeSample{}, fmt.Errorf("collector: wal node sample: %w", err)
	}
	return s, nil
}

// WALConfig enables durable ingest. With a Dir set, every accepted record
// is appended to the write-ahead log before it is enqueued to its shard,
// HTTP batches are acknowledged only after their records are fsynced
// (group commit), and startup recovery rebuilds the aggregate state from
// the last checkpoint plus a log replay.
type WALConfig struct {
	// Dir holds segments and checkpoints; empty disables the WAL.
	Dir string
	// FsyncInterval batches fsyncs (see wal.Config); zero syncs per batch.
	FsyncInterval time.Duration
	// MaxSyncWindows pipelines the group commit: up to this many fsync
	// windows in flight at once, acks released in append order (see
	// wal.Config.MaxSyncWindows; 0 or 1 keeps the serial commit).
	MaxSyncWindows int
	// SegmentBytes is the segment rotation threshold.
	SegmentBytes int64
	// CheckpointInterval writes periodic shard-snapshot checkpoints so
	// recovery replays only the log tail; zero disables the loop (a final
	// checkpoint is still taken on Close).
	CheckpointInterval time.Duration
	// FS overrides the filesystem for fault-injection tests.
	FS wal.FS
}

// WALRecovery summarises what startup recovery rebuilt.
type WALRecovery struct {
	// CheckpointLSN is the log position the loaded checkpoint covered.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// RestoredRecords came from the checkpoint's aggregates.
	RestoredRecords uint64 `json:"restored_records"`
	// ReplayedRecords were re-applied from the log tail.
	ReplayedRecords uint64 `json:"replayed_records"`
	// SkippedCorrupt counts tail records whose payloads failed to decode;
	// replay skips and counts them, it never gives up.
	SkippedCorrupt uint64 `json:"skipped_corrupt"`
	// Log carries the segment-level recovery detail.
	Log wal.RecoveryStats `json:"log"`
}

// WALStats is the durability section of /stats.
type WALStats struct {
	Enabled           bool        `json:"enabled"`
	AppendedLSN       uint64      `json:"appended_lsn"`
	DurableLSN        uint64      `json:"durable_lsn"`
	Segments          int         `json:"segments"`
	AppendedBytes     int64       `json:"appended_bytes"`
	Syncs             uint64      `json:"syncs"`
	Checkpoints       uint64      `json:"checkpoints"`
	LastCheckpointLSN uint64      `json:"last_checkpoint_lsn"`
	Recovery          WALRecovery `json:"recovery"`
}

// ErrNoWAL reports a durability operation on an aggregator running without
// a write-ahead log.
var ErrNoWAL = errors.New("collector: aggregator has no WAL")

// encodeExtensionPayload renders one record as its WAL payload — exactly
// one dataset CSV row.
func encodeExtensionPayload(r extension.Record) ([]byte, error) {
	var buf bytes.Buffer
	cw := csv.NewWriter(&buf)
	if err := cw.Write(dataset.MarshalExtensionRow(r)); err != nil {
		return nil, err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeWALRecord turns a replayed WAL record back into a queue item.
func decodeWALRecord(rec wal.Rec) (item, error) {
	switch rec.Kind {
	case walKindExtension:
		r, err := DecodeWALExtension(rec.Payload)
		if err != nil {
			return item{}, err
		}
		return item{kind: itemExtension, ext: r}, nil
	case walKindNode:
		s, err := DecodeWALNode(rec.Payload)
		if err != nil {
			return item{}, err
		}
		return item{kind: itemNode, node: s}, nil
	default:
		return item{}, fmt.Errorf("collector: unknown wal record kind %d", rec.Kind)
	}
}

// appendWAL logs one queue item, returning its LSN.
func (a *Aggregator) appendWAL(it item) (uint64, error) {
	switch it.kind {
	case itemExtension:
		payload, err := encodeExtensionPayload(it.ext)
		if err != nil {
			return 0, err
		}
		return a.wal.Append(walKindExtension, payload)
	default:
		payload, err := json.Marshal(it.node)
		if err != nil {
			return 0, err
		}
		payload = append(payload, '\n')
		return a.wal.Append(walKindNode, payload)
	}
}

// SyncWAL blocks until every record appended so far is durable — the
// server's acknowledgement barrier. Without a WAL it is a no-op.
func (a *Aggregator) SyncWAL() error {
	if a.wal == nil {
		return nil
	}
	return a.wal.Commit(a.wal.AppendedLSN())
}

// WALStats reports the durability counters (zero-valued Enabled=false
// struct without a WAL).
func (a *Aggregator) WALStats() WALStats {
	if a.wal == nil {
		return WALStats{}
	}
	ws := a.wal.Stats()
	return WALStats{
		Enabled:           true,
		AppendedLSN:       ws.AppendedLSN,
		DurableLSN:        ws.DurableLSN,
		Segments:          ws.Segments,
		AppendedBytes:     int64(a.met.walAppendedBytes.Value()),
		Syncs:             a.met.walFsyncs.Value(),
		Checkpoints:       a.met.walCheckpoints.Value(),
		LastCheckpointLSN: a.ckptLSN.Load(),
		Recovery:          a.walRecovery,
	}
}

// WALRecovery reports what startup recovery rebuilt (zero without a WAL).
func (a *Aggregator) WALRecovery() WALRecovery { return a.walRecovery }

// --- checkpoint payload ------------------------------------------------

// ckptFile is the checkpoint payload: the full grouped aggregate state,
// flat (not per shard) so the shard count may change between runs. Sketches
// travel as their exact binary serialisation.
type ckptFile struct {
	RelErr float64    `json:"rel_err"`
	Ext    []ckptExt  `json:"ext"`
	Nodes  []ckptNode `json:"nodes"`
}

type ckptExt struct {
	City    string   `json:"city"`
	ISP     string   `json:"isp"`
	Domains []string `json:"domains"`
	PTT     []byte   `json:"ptt"`
}

type ckptNode struct {
	Node    string  `json:"node"`
	Kind    string  `json:"kind"`
	Count   uint64  `json:"count"`
	Down    []byte  `json:"down"`
	UpSum   float64 `json:"up_sum"`
	PingSum float64 `json:"ping_sum"`
	LossSum float64 `json:"loss_sum"`
}

func encodeCheckpoint(parts []shardSnap, relErr float64) ([]byte, error) {
	out := ckptFile{RelErr: relErr}
	for _, p := range parts {
		for k, g := range p.ext {
			blob, err := g.ptt.MarshalBinary()
			if err != nil {
				return nil, err
			}
			domains := make([]string, 0, len(g.domains))
			for d := range g.domains {
				domains = append(domains, d)
			}
			out.Ext = append(out.Ext, ckptExt{City: k.City, ISP: k.ISP, Domains: domains, PTT: blob})
		}
		for k, g := range p.nodes {
			blob, err := g.down.MarshalBinary()
			if err != nil {
				return nil, err
			}
			out.Nodes = append(out.Nodes, ckptNode{
				Node: k.Node, Kind: k.Kind, Count: g.count, Down: blob,
				UpSum: g.upSum, PingSum: g.pingSum, LossSum: g.lossSum,
			})
		}
	}
	return json.Marshal(out)
}

// restoreCheckpoint rebuilds shard state from a checkpoint payload. Runs
// before the shard goroutines start, so direct map access is safe. Returns
// the number of records the restored aggregates represent.
func (a *Aggregator) restoreCheckpoint(payload []byte) (uint64, error) {
	var cf ckptFile
	if err := json.Unmarshal(payload, &cf); err != nil {
		return 0, fmt.Errorf("collector: checkpoint decode: %w", err)
	}
	if cf.RelErr != a.cfg.SketchRelErr {
		return 0, fmt.Errorf("collector: checkpoint sketch error %v does not match configured %v",
			cf.RelErr, a.cfg.SketchRelErr)
	}
	var restored uint64
	for _, e := range cf.Ext {
		ptt := &stats.QuantileSketch{}
		if err := ptt.UnmarshalBinary(e.PTT); err != nil {
			return 0, fmt.Errorf("collector: checkpoint group %s/%s: %w", e.City, e.ISP, err)
		}
		domains := make(map[string]struct{}, len(e.Domains))
		for _, d := range e.Domains {
			domains[d] = struct{}{}
		}
		sh := a.shardFor(e.City, e.ISP)
		sh.ext[extKey{e.City, e.ISP}] = &extAgg{domains: domains, ptt: ptt}
		sh.met.groups.Set(float64(len(sh.ext) + len(sh.nodes)))
		sh.met.accepted[itemExtension].Add(ptt.Count())
		sh.met.processed.Add(ptt.Count())
		restored += ptt.Count()
	}
	for _, n := range cf.Nodes {
		down := &stats.QuantileSketch{}
		if err := down.UnmarshalBinary(n.Down); err != nil {
			return 0, fmt.Errorf("collector: checkpoint node %s/%s: %w", n.Node, n.Kind, err)
		}
		sh := a.shardFor(n.Node, n.Kind)
		sh.nodes[nodeKey{n.Node, n.Kind}] = &nodeAgg{
			count: n.Count, down: down,
			upSum: n.UpSum, pingSum: n.PingSum, lossSum: n.LossSum,
		}
		sh.met.groups.Set(float64(len(sh.ext) + len(sh.nodes)))
		sh.met.accepted[itemNode].Add(n.Count)
		sh.met.processed.Add(n.Count)
		restored += n.Count
	}
	return restored, nil
}

// recoverWAL loads the checkpoint and replays the log tail into the (not
// yet started) shards.
func (a *Aggregator) recoverWAL() error {
	rec := WALRecovery{Log: a.wal.Recovery()}
	lsn, payload, err := wal.LoadCheckpoint(a.cfg.WAL.FS, a.cfg.WAL.Dir)
	switch {
	case err == nil:
		restored, err := a.restoreCheckpoint(payload)
		if err != nil {
			return err
		}
		rec.CheckpointLSN = lsn
		rec.RestoredRecords = restored
		a.ckptLSN.Store(lsn)
	case errors.Is(err, wal.ErrNoCheckpoint):
		// Cold start: full replay from LSN 0.
	default:
		return err
	}
	err = a.wal.Replay(lsn, func(r wal.Rec) error {
		if r.Kind == walKindExtensionBatch {
			recs, derr := DecodeWALExtensionBatch(r.Payload)
			if derr != nil {
				// The frame CRC matched at the WAL layer but the columnar
				// body is bad: skip the whole frame and count it once.
				rec.SkippedCorrupt++
				return nil
			}
			for i := range recs {
				a.replayItem(item{kind: itemExtension, ext: recs[i]}, &rec)
			}
			return nil
		}
		it, derr := decodeWALRecord(r)
		if derr != nil {
			// A durable frame with an undecodable payload: skip and
			// count, never abort recovery over one bad record.
			rec.SkippedCorrupt++
			return nil
		}
		a.replayItem(it, &rec)
		return nil
	})
	if err != nil {
		return fmt.Errorf("collector: wal replay: %w", err)
	}
	a.walRecovery = rec
	return nil
}

// replayItem re-applies one recovered record to its shard (the goroutines
// have not started yet, so direct apply is safe).
func (a *Aggregator) replayItem(it item, rec *WALRecovery) {
	it.enqueued = time.Now()
	var sh *shard
	if it.kind == itemExtension {
		sh = a.shardFor(it.ext.City, it.ext.ISP)
	} else {
		sh = a.shardFor(it.node.Node, it.node.Kind)
	}
	sh.met.accepted[it.kind].Inc()
	sh.apply(it)
	rec.ReplayedRecords++
}

// Checkpoint persists a shard-snapshot checkpoint and prunes fully-covered
// segments. It is a brief stop-the-world: intake pauses (offers block on
// the aggregator lock) while the shard queues drain and the state is
// captured, so the snapshot matches the log position exactly.
func (a *Aggregator) Checkpoint() error {
	if a.wal == nil {
		return ErrNoWAL
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("collector: checkpoint after close")
	}
	parts, err := a.drainedSnapshotLocked()
	if err != nil {
		return err
	}
	return a.writeCheckpointLocked(parts)
}

// drainedSnapshotLocked waits (holding the write lock, so no new offers)
// for every queue to empty, then captures each shard between applies —
// at that instant the state holds exactly the records appended to the WAL.
func (a *Aggregator) drainedSnapshotLocked() ([]shardSnap, error) {
	parts := make([]shardSnap, len(a.shards))
	for i, sh := range a.shards {
		for len(sh.ch) > 0 {
			time.Sleep(50 * time.Microsecond)
		}
		reply := make(chan shardSnap, 1)
		sh.ctl <- reply
		parts[i] = <-reply
	}
	return parts, nil
}

// writeCheckpointLocked syncs the log, persists the snapshot at the synced
// position, and prunes covered segments.
func (a *Aggregator) writeCheckpointLocked(parts []shardSnap) error {
	lsn := a.wal.AppendedLSN()
	if err := a.wal.Sync(); err != nil {
		return err
	}
	payload, err := encodeCheckpoint(parts, a.cfg.SketchRelErr)
	if err != nil {
		return err
	}
	if err := wal.SaveCheckpoint(a.cfg.WAL.FS, a.cfg.WAL.Dir, lsn, payload); err != nil {
		return err
	}
	a.met.walCheckpoints.Inc()
	a.ckptLSN.Store(lsn)
	return a.wal.Prune(lsn)
}

func (a *Aggregator) checkpointLoop() {
	defer close(a.ckptDone)
	t := time.NewTicker(a.cfg.WAL.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best effort: a failed periodic checkpoint only means a
			// longer replay; the next tick (and Close) retry.
			_ = a.Checkpoint()
		case <-a.ckptStop:
			return
		}
	}
}
