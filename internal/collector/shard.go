package collector

import (
	"sync"
	"time"

	"starlinkview/internal/stats"
	"starlinkview/internal/trace"
)

// extKey groups browsing records the way the batch pipeline's city table
// does: by city and ISP class.
type extKey struct {
	City, ISP string
}

// nodeKey groups volunteer-node samples by node and measurement kind.
type nodeKey struct {
	Node, Kind string
}

// extAgg is the streaming aggregate for one (city, ISP) group. Counts,
// sums and the domain set are exact; percentiles come from the sketch.
type extAgg struct {
	domains map[string]struct{}
	ptt     *stats.QuantileSketch
}

// nodeAgg is the streaming aggregate for one (node, kind) group.
type nodeAgg struct {
	count   uint64
	down    *stats.QuantileSketch
	upSum   float64
	pingSum float64
	lossSum float64
}

// shard owns one partition of the aggregate state. Only its goroutine
// touches ext/nodes; producers reach it through the bounded ch and
// snapshot requests through ctl. Its counters are children of the
// aggregator's metrics registry — the same series /metrics exposes — so
// /stats is derived, not duplicated.
type shard struct {
	id         int
	ch         chan item
	ctl        chan chan<- shardSnap
	relErr     float64
	applyDelay time.Duration
	tracer     *trace.Tracer

	met shardMetrics

	ext   map[extKey]*extAgg
	nodes map[nodeKey]*nodeAgg
}

func newShard(id int, cfg Config, m *metrics) *shard {
	return &shard{
		id:         id,
		ch:         make(chan item, cfg.QueueLen),
		ctl:        make(chan chan<- shardSnap),
		relErr:     cfg.SketchRelErr,
		applyDelay: cfg.applyDelay,
		tracer:     cfg.Tracer,
		met:        m.shard(id),
		ext:        make(map[extKey]*extAgg),
		nodes:      make(map[nodeKey]*nodeAgg),
	}
}

// run is the shard goroutine: apply records, answer snapshots, and on
// channel close drain whatever is left before exiting.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case it, ok := <-s.ch:
			if !ok {
				return
			}
			s.apply(it)
		case reply := <-s.ctl:
			reply <- s.snapshot()
		}
	}
}

func (s *shard) apply(it item) {
	if it.kind == itemBatch {
		s.applyBatch(it)
		return
	}
	if s.applyDelay > 0 {
		time.Sleep(s.applyDelay)
	}
	// A valid span context marks the batch's representative record: open
	// the (back-dated) shard.apply span covering queue wait plus apply, and
	// stamp the latency histogram with the trace as an exemplar.
	var sp *trace.Span
	if it.span.Valid() {
		sp = s.tracer.StartChildAt(it.span, "shard.apply", it.enqueued)
		sp.SetInt("shard", int64(s.id))
		s.met.applyLatency.ObserveExemplar(time.Since(it.enqueued).Seconds(), it.span.Trace.String())
	} else {
		s.met.applyLatency.Observe(time.Since(it.enqueued).Seconds())
	}
	switch it.kind {
	case itemExtension:
		r := it.ext
		g := s.ext[extKey{r.City, r.ISP}]
		if g == nil {
			ptt, _ := stats.NewQuantileSketch(s.relErr)
			g = &extAgg{domains: make(map[string]struct{}), ptt: ptt}
			s.ext[extKey{r.City, r.ISP}] = g
			s.met.groups.Set(float64(len(s.ext) + len(s.nodes)))
		}
		g.domains[r.Domain] = struct{}{}
		g.ptt.Add(r.PTTMs)
	case itemNode:
		n := it.node
		g := s.nodes[nodeKey{n.Node, n.Kind}]
		if g == nil {
			down, _ := stats.NewQuantileSketch(s.relErr)
			g = &nodeAgg{down: down}
			s.nodes[nodeKey{n.Node, n.Kind}] = g
			s.met.groups.Set(float64(len(s.ext) + len(s.nodes)))
		}
		g.count++
		g.down.Add(n.DownMbps)
		g.upSum += n.UpMbps
		g.pingSum += n.PingMs
		g.lossSum += n.LossPct
	}
	s.met.processed.Inc()
	sp.Finish()
}

// applyBatch applies one partition of a shared batch view: every row keyed
// to this shard, in ascending row order — the same per-shard subsequence the
// serial per-record path delivers, so aggregates (and snapshots) come out
// identical — then releases this shard's reference on the view. One latency
// observation and at most one span cover the whole slice; consecutive rows
// of one (city, ISP) reuse the group lookup, so a sorted batch pays roughly
// one map probe per group rather than one per record.
func (s *shard) applyBatch(it item) {
	v := it.batch.view
	var sp *trace.Span
	if it.span.Valid() {
		sp = s.tracer.StartChildAt(it.span, "shard.apply", it.enqueued)
		sp.SetInt("shard", int64(s.id))
		sp.SetInt("records", int64(len(it.rows)))
		s.met.applyLatency.ObserveExemplar(time.Since(it.enqueued).Seconds(), it.span.Trace.String())
	} else {
		s.met.applyLatency.Observe(time.Since(it.enqueued).Seconds())
	}
	var lastCity, lastISP string
	var g *extAgg
	for _, ri := range it.rows {
		if s.applyDelay > 0 {
			time.Sleep(s.applyDelay)
		}
		i := int(ri)
		city, isp := v.City(i), v.ISP(i)
		if g == nil || city != lastCity || isp != lastISP {
			lastCity, lastISP = city, isp
			g = s.ext[extKey{city, isp}]
			if g == nil {
				ptt, _ := stats.NewQuantileSketch(s.relErr)
				g = &extAgg{domains: make(map[string]struct{}), ptt: ptt}
				s.ext[extKey{city, isp}] = g
				s.met.groups.Set(float64(len(s.ext) + len(s.nodes)))
			}
		}
		g.domains[v.Domain(i)] = struct{}{}
		g.ptt.Add(v.PTTMs(i))
	}
	s.met.processed.Add(uint64(len(it.rows)))
	sp.Finish()
	it.batch.done()
}

// stats reads the shard's counters from the registry children. Safe from
// any goroutine; latency percentiles interpolate the apply-latency
// histogram's buckets (microseconds, matching the historical JSON shape).
func (s *shard) stats() ShardStats {
	return ShardStats{
		Shard:       s.id,
		Accepted:    s.met.accepted[itemExtension].Value() + s.met.accepted[itemNode].Value(),
		Dropped:     s.met.dropped[itemExtension].Value() + s.met.dropped[itemNode].Value(),
		Processed:   s.met.processed.Value(),
		Groups:      int(s.met.groups.Value()),
		QueueLen:    len(s.ch),
		IngestP50Us: nanZero(s.met.applyLatency.Quantile(0.50) * 1e6),
		IngestP95Us: nanZero(s.met.applyLatency.Quantile(0.95) * 1e6),
		IngestP99Us: nanZero(s.met.applyLatency.Quantile(0.99) * 1e6),
	}
}

// shardSnap is a consistent copy of one shard's state, safe to merge and
// read outside the shard goroutine.
type shardSnap struct {
	stats ShardStats
	ext   map[extKey]*extAgg
	nodes map[nodeKey]*nodeAgg
}

func (s *shard) snapshot() shardSnap {
	snap := shardSnap{
		stats: s.stats(),
		ext:   make(map[extKey]*extAgg, len(s.ext)),
		nodes: make(map[nodeKey]*nodeAgg, len(s.nodes)),
	}
	for k, g := range s.ext {
		domains := make(map[string]struct{}, len(g.domains))
		for d := range g.domains {
			domains[d] = struct{}{}
		}
		snap.ext[k] = &extAgg{domains: domains, ptt: g.ptt.Clone()}
	}
	for k, g := range s.nodes {
		c := *g
		c.down = g.down.Clone()
		snap.nodes[k] = &c
	}
	return snap
}
