package collector

import (
	"sync"
	"sync/atomic"
	"time"

	"starlinkview/internal/stats"
)

// extKey groups browsing records the way the batch pipeline's city table
// does: by city and ISP class.
type extKey struct {
	City, ISP string
}

// nodeKey groups volunteer-node samples by node and measurement kind.
type nodeKey struct {
	Node, Kind string
}

// extAgg is the streaming aggregate for one (city, ISP) group. Counts,
// sums and the domain set are exact; percentiles come from the sketch.
type extAgg struct {
	domains map[string]struct{}
	ptt     *stats.QuantileSketch
}

// nodeAgg is the streaming aggregate for one (node, kind) group.
type nodeAgg struct {
	count   uint64
	down    *stats.QuantileSketch
	upSum   float64
	pingSum float64
	lossSum float64
}

// shard owns one partition of the aggregate state. Only its goroutine
// touches ext/nodes/latency; producers reach it through the bounded ch and
// snapshot requests through ctl.
type shard struct {
	id         int
	ch         chan item
	ctl        chan chan<- shardSnap
	relErr     float64
	applyDelay time.Duration

	accepted  atomic.Uint64
	dropped   atomic.Uint64
	processed atomic.Uint64

	ext     map[extKey]*extAgg
	nodes   map[nodeKey]*nodeAgg
	latency *stats.QuantileSketch // queue-to-apply latency, µs
}

func newShard(id int, cfg Config) *shard {
	lat, err := stats.NewQuantileSketch(cfg.SketchRelErr)
	if err != nil {
		// normalize() guarantees a valid relative error.
		panic(err)
	}
	return &shard{
		id:         id,
		ch:         make(chan item, cfg.QueueLen),
		ctl:        make(chan chan<- shardSnap),
		relErr:     cfg.SketchRelErr,
		applyDelay: cfg.applyDelay,
		ext:        make(map[extKey]*extAgg),
		nodes:      make(map[nodeKey]*nodeAgg),
		latency:    lat,
	}
}

// run is the shard goroutine: apply records, answer snapshots, and on
// channel close drain whatever is left before exiting.
func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		select {
		case it, ok := <-s.ch:
			if !ok {
				return
			}
			s.apply(it)
		case reply := <-s.ctl:
			reply <- s.snapshot()
		}
	}
}

func (s *shard) apply(it item) {
	if s.applyDelay > 0 {
		time.Sleep(s.applyDelay)
	}
	s.latency.Add(float64(time.Since(it.enqueued)) / float64(time.Microsecond))
	switch it.kind {
	case itemExtension:
		r := it.ext
		g := s.ext[extKey{r.City, r.ISP}]
		if g == nil {
			ptt, _ := stats.NewQuantileSketch(s.relErr)
			g = &extAgg{domains: make(map[string]struct{}), ptt: ptt}
			s.ext[extKey{r.City, r.ISP}] = g
		}
		g.domains[r.Domain] = struct{}{}
		g.ptt.Add(r.PTTMs)
	case itemNode:
		n := it.node
		g := s.nodes[nodeKey{n.Node, n.Kind}]
		if g == nil {
			down, _ := stats.NewQuantileSketch(s.relErr)
			g = &nodeAgg{down: down}
			s.nodes[nodeKey{n.Node, n.Kind}] = g
		}
		g.count++
		g.down.Add(n.DownMbps)
		g.upSum += n.UpMbps
		g.pingSum += n.PingMs
		g.lossSum += n.LossPct
	}
	s.processed.Add(1)
}

// shardSnap is a consistent copy of one shard's state, safe to merge and
// read outside the shard goroutine.
type shardSnap struct {
	stats ShardStats
	ext   map[extKey]*extAgg
	nodes map[nodeKey]*nodeAgg
}

func (s *shard) snapshot() shardSnap {
	snap := shardSnap{
		stats: ShardStats{
			Shard:       s.id,
			Accepted:    s.accepted.Load(),
			Dropped:     s.dropped.Load(),
			Processed:   s.processed.Load(),
			Groups:      len(s.ext) + len(s.nodes),
			QueueLen:    len(s.ch),
			IngestP50Us: s.latency.Quantile(0.50),
			IngestP95Us: s.latency.Quantile(0.95),
			IngestP99Us: s.latency.Quantile(0.99),
		},
		ext:   make(map[extKey]*extAgg, len(s.ext)),
		nodes: make(map[nodeKey]*nodeAgg, len(s.nodes)),
	}
	for k, g := range s.ext {
		domains := make(map[string]struct{}, len(g.domains))
		for d := range g.domains {
			domains[d] = struct{}{}
		}
		snap.ext[k] = &extAgg{domains: domains, ptt: g.ptt.Clone()}
	}
	for k, g := range s.nodes {
		c := *g
		c.down = g.down.Clone()
		snap.nodes[k] = &c
	}
	return snap
}
