package collector

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
	"starlinkview/internal/weather"
)

// batchTestRecords draws a workload spread over enough (city, ISP) groups
// to hit every shard, with realistic repetition in the string columns.
func batchTestRecords(seed int64, n int) []extension.Record {
	r := rand.New(rand.NewSource(seed))
	cities := []string{"London", "Seattle", "Sydney", "Barcelona", "São Paulo", "Zürich"}
	isps := []string{"starlink", "terrestrial"}
	domains := []string{"example.com", "news.site", "video.tv", "shop.net", "検索.jp"}
	conds := weather.Conditions()
	base := time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]extension.Record, n)
	for i := range recs {
		recs[i] = extension.Record{
			UserID:    fmt.Sprintf("u%03d", r.Intn(40)),
			City:      cities[r.Intn(len(cities))],
			Country:   "XX",
			ISP:       isps[r.Intn(len(isps))],
			ASN:       14593,
			At:        base.Add(time.Duration(i) * time.Second),
			Domain:    domains[r.Intn(len(domains))],
			Rank:      r.Intn(100000),
			Popular:   r.Intn(2) == 0,
			PTTMs:     50 + 400*r.Float64(),
			PLTMs:     200 + 3000*r.Float64(),
			Condition: conds[r.Intn(len(conds))],
			HasWx:     true,
			Benchmark: r.Intn(10) == 0,
			Google:    r.Intn(5) == 0,
		}
	}
	return recs
}

func comparableAggSnapshot(t *testing.T, snap *Snapshot) []byte {
	t.Helper()
	groups, err := json.Marshal(snap.Groups)
	if err != nil {
		t.Fatal(err)
	}
	table, err := json.Marshal(snap.CityTableJSON())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(struct {
		Groups    json.RawMessage `json:"groups"`
		CityTable json.RawMessage `json:"city_table"`
		Accepted  uint64          `json:"accepted"`
		Processed uint64          `json:"processed"`
	}{groups, table, snap.Accepted, snap.Processed})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// ingestVia runs the records through a fresh WAL-backed server over the
// given wire format and returns the drained snapshot plus the WAL dir.
func ingestVia(t *testing.T, wire Wire, recs []extension.Record) ([]byte, string) {
	t.Helper()
	dir := t.TempDir()
	srv, err := OpenServer(Config{
		Shards:   4,
		Registry: obs.NewRegistry(),
		WAL:      WALConfig{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL(), ClientConfig{Wire: wire, BatchSize: 97, FlushEvery: 0})
	for _, r := range recs {
		if err := client.AddRecord(r); err != nil {
			t.Fatalf("wire %v: add: %v", wire, err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatalf("wire %v: close: %v", wire, err)
	}
	snap := srv.Aggregator().Snapshot()
	if got := snap.Processed; got != uint64(len(recs)) {
		// Snapshot drains per shard; under Block policy with the client
		// done, everything accepted is applied once queues empty.
		deadline := time.Now().Add(5 * time.Second)
		for got != uint64(len(recs)) && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
			snap = srv.Aggregator().Snapshot()
			got = snap.Processed
		}
		if got != uint64(len(recs)) {
			t.Fatalf("wire %v: processed %d of %d", wire, got, len(recs))
		}
	}
	out := comparableAggSnapshot(t, snap)
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("wire %v: shutdown: %v", wire, err)
	}
	return out, dir
}

// TestBatchIngestMatchesPerRecord is the wire-equivalence property: the
// same record stream through /ingest/batch and /ingest/extension produces
// byte-identical aggregate snapshots, and a WAL replay of the batch frames
// (checkpoint deleted, full replay) rebuilds that same state.
func TestBatchIngestMatchesPerRecord(t *testing.T) {
	recs := batchTestRecords(1, 5000)
	csvSnap, _ := ingestVia(t, WireCSV, recs)
	batchSnap, batchDir := ingestVia(t, WireBatch, recs)
	if string(csvSnap) != string(batchSnap) {
		t.Fatalf("batch-wire snapshot differs from per-record wire:\n csv   %s\n batch %s", csvSnap, batchSnap)
	}

	// Force a replay from the logged batch frames alone.
	if err := os.Remove(filepath.Join(batchDir, "checkpoint")); err != nil {
		t.Fatal(err)
	}
	agg, err := OpenAggregator(Config{
		Shards:   4,
		Registry: obs.NewRegistry(),
		WAL:      WALConfig{Dir: batchDir},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := agg.WALRecovery()
	if rec.ReplayedRecords != uint64(len(recs)) || rec.SkippedCorrupt != 0 {
		t.Fatalf("replay: %d records, %d corrupt; want %d, 0",
			rec.ReplayedRecords, rec.SkippedCorrupt, len(recs))
	}
	replayed := comparableAggSnapshot(t, agg.Snapshot())
	if string(replayed) != string(batchSnap) {
		t.Fatalf("replayed snapshot differs from live snapshot")
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchIngestShardCounts checks the batch path at several shard counts
// against the per-record path — the frame is one WAL append however many
// shards its records fan out to.
func TestBatchIngestShardCounts(t *testing.T) {
	recs := batchTestRecords(2, 1200)
	var want []byte
	for i, shards := range []int{1, 4, 8} {
		agg := NewAggregator(Config{Shards: shards, Registry: obs.NewRegistry()})
		frame := dataset.MarshalBatch(recs)
		decoded, err := dataset.UnmarshalBatch(frame)
		if err != nil {
			t.Fatal(err)
		}
		acc, drop := agg.OfferExtensionFrame(frame, decoded, trace.SpanContext{})
		if acc != len(recs) || drop != 0 {
			t.Fatalf("shards=%d: accepted %d dropped %d", shards, acc, drop)
		}
		if err := agg.Close(); err != nil {
			t.Fatal(err)
		}
		got := comparableAggSnapshot(t, agg.Snapshot())
		if i == 0 {
			want = got
			continue
		}
		if string(got) != string(want) {
			t.Fatalf("shards=%d snapshot differs from shards=1", shards)
		}
	}
}

// FuzzReplayBatchFrame drives arbitrary bytes through the full durable
// path: the payload is appended to a real WAL as a batch frame, and startup
// recovery must never panic — a decodable frame replays all its records,
// anything else is skipped and counted, exactly once.
func FuzzReplayBatchFrame(f *testing.F) {
	for _, n := range []int{0, 1, 50} {
		f.Add(dataset.MarshalBatch(batchTestRecords(3, n)))
	}
	f.Add([]byte("SLB1 not a frame"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > wal.MaxPayload {
			t.Skip("exceeds WAL payload bound")
		}
		dir := t.TempDir()
		w, err := wal.Open(wal.Config{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Append(WALKindExtensionBatch, data); err != nil {
			w.Close()
			t.Skipf("append rejected: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		agg, err := OpenAggregator(Config{
			Shards:   2,
			Registry: obs.NewRegistry(),
			WAL:      WALConfig{Dir: dir},
		})
		if err != nil {
			t.Fatalf("recovery failed: %v", err)
		}
		rec := agg.WALRecovery()
		recs, derr := dataset.UnmarshalBatch(data)
		if derr == nil {
			if rec.ReplayedRecords != uint64(len(recs)) || rec.SkippedCorrupt != 0 {
				t.Fatalf("valid frame of %d records: replayed %d, corrupt %d",
					len(recs), rec.ReplayedRecords, rec.SkippedCorrupt)
			}
		} else if rec.ReplayedRecords != 0 || rec.SkippedCorrupt != 1 {
			t.Fatalf("invalid frame: replayed %d, corrupt %d", rec.ReplayedRecords, rec.SkippedCorrupt)
		}
		if err := agg.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
