package collector

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// OverloadedError is the typed form of a collector's 429: the server shed
// the request under admission control and named how long to back off.
// Clients treat it as flow control — pace and resend — rather than failure.
type OverloadedError struct {
	// RetryAfter is the server's Retry-After hint (1s when absent).
	RetryAfter time.Duration
	// Msg is the response body's error text.
	Msg string
}

// Error implements error.
func (e *OverloadedError) Error() string {
	return fmt.Sprintf("collector: overloaded (retry after %v): %s", e.RetryAfter, e.Msg)
}

// IsOverloaded unwraps err to the collector's overload signal, returning the
// server's Retry-After hint when it is one.
func IsOverloaded(err error) (time.Duration, bool) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter, true
	}
	return 0, false
}

// NewOverloadedError builds the typed error from a 429 response, reading
// its Retry-After header. Shared by every client that talks to a collector.
func NewOverloadedError(resp *http.Response, msg string) *OverloadedError {
	d := time.Second
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	return &OverloadedError{RetryAfter: d, Msg: msg}
}
