package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
	"starlinkview/internal/tsdb"
)

// These are the embedded-tsdb acceptance e2es. They live in the collector
// package (not tsdb) because the overload harness needs the unexported
// applyDelay hook; the import is one-way — tsdb depends only on obs and
// trace, the collector knows nothing about the store.

func postBatch(t *testing.T, srv *Server, rng *rand.Rand, city, traceparent string, n int) (int, IngestReply) {
	t.Helper()
	records := make([]extension.Record, n)
	for i := range records {
		records[i] = testRecord(rng, city, "starlink")
	}
	payload, err := EncodeExtensionBatch(records)
	if err != nil {
		t.Error(err)
		return 0, IngestReply{}
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL()+PathIngestExtension, bytes.NewReader(payload))
	if err != nil {
		t.Error(err)
		return 0, IngestReply{}
	}
	req.Header.Set("Content-Type", ExtensionContentType)
	if traceparent != "" {
		req.Header.Set(trace.TraceparentHeader, traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Error(err)
		return 0, IngestReply{}
	}
	defer resp.Body.Close()
	var reply IngestReply
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Error(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, reply
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// TestTSDBRateMatchesIngestRate is the query-correctness acceptance e2e:
// a tsdb scraping the collector's registry answers a range rate() over
// ingest_records_total that matches the true ingest rate. The scrape
// clock is driven by hand at exactly one interval apart, so the expected
// rate is exact: N records over one second.
func TestTSDBRateMatchesIngestRate(t *testing.T) {
	srv, err := OpenServer(Config{Shards: 2, QueueLen: 64})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	reg := srv.Aggregator().Registry()
	db, err := tsdb.Open(tsdb.Config{
		Source:         tsdb.RegistrySource(reg),
		ScrapeInterval: time.Hour, // ticks driven by hand
		Registry:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv.Handle(tsdb.PathQuery, db.QueryHandler())
	srv.Handle(tsdb.PathAlerts, db.AlertsHandler())

	t0 := time.Now()
	db.Scrape(t0) // baseline: ingest_records_total = 0

	const posts, perPost = 3, 200
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < posts; i++ {
		if code, reply := postBatch(t, srv, rng, "London", "", perPost); code != http.StatusOK || reply.Accepted != perPost {
			t.Fatalf("post %d: status %d accepted %d", i, code, reply.Accepted)
		}
	}
	// All records were ingested between the two ticks, one second apart
	// on the scrape clock: the true rate over that window is exactly N/s.
	t1 := t0.Add(time.Second)
	db.Scrape(t1)

	var qr tsdb.QueryReply
	url := fmt.Sprintf("%s%s?metric=ingest_records_total&fn=rate&from=%d&to=%d",
		srv.URL(), tsdb.PathQuery, t0.UnixMilli(), t1.UnixMilli())
	if code := getJSON(t, url, &qr); code != http.StatusOK {
		t.Fatalf("query status %d", code)
	}
	if qr.Value == nil {
		t.Fatal("rate query returned no value")
	}
	want := float64(posts * perPost) // per second
	if math.Abs(*qr.Value-want) > 1e-6 {
		t.Fatalf("rate = %v rec/s, want %v", *qr.Value, want)
	}

	// The raw range over the counter shows both ticks.
	var raw tsdb.QueryReply
	url = fmt.Sprintf("%s%s?metric=ingest_records_total&fn=raw&from=%d&to=%d",
		srv.URL(), tsdb.PathQuery, t0.UnixMilli(), t1.UnixMilli())
	getJSON(t, url, &raw)
	total := 0
	for _, s := range raw.Series {
		total += len(s.Samples)
	}
	if total < 2 {
		t.Fatalf("raw range returned %d samples, want >= 2", total)
	}

	// Unknown fn and missing metric are client errors, not 500s.
	resp, err := http.Get(srv.URL() + tsdb.PathQuery + "?metric=x&fn=bogus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus fn: status %d, want 400", resp.StatusCode)
	}
}

// TestAlertFiresUnderOverload is the alerting acceptance e2e (run under
// -race by make check, beside the shed e2e it mirrors): the shed overload
// harness floods a deliberately slow collector until 429s flow, while an
// embedded tsdb scrapes the registry every 25ms and evaluates a burn-rate
// rule over collector_shed_total vs http_requests_total. The alert must
// walk inactive -> pending -> firing while the flood runs (served at GET
// /alerts, mirrored in the alerts_firing gauge, and traced as a forced-
// sampled root span), then resolve once the flood stops.
func TestAlertFiresUnderOverload(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 23})
	srv, err := OpenServer(Config{
		Shards:     1,
		QueueLen:   4,
		Tracer:     tracer,
		applyDelay: 2 * time.Millisecond,
		Shed: ShedConfig{
			QueueHighPct: 0.5,
			EvalInterval: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	reg := srv.Aggregator().Registry()
	rule := tsdb.Rule{
		Name: "ingest-shed-burn", Kind: tsdb.KindBurnRate,
		BadMetric:   "collector_shed_total",
		TotalMetric: "http_requests_total",
		// 10% error budget, 2x burn trigger: fires once more than 20% of
		// requests in both windows are shed — far below flood reality.
		Objective:     0.9,
		Factor:        2,
		ShortWindow:   tsdb.Duration(300 * time.Millisecond),
		LongWindow:    tsdb.Duration(time.Second),
		For:           tsdb.Duration(100 * time.Millisecond),
		KeepFiringFor: tsdb.Duration(200 * time.Millisecond),
	}
	db, err := tsdb.Open(tsdb.Config{
		Source:         tsdb.RegistrySource(reg),
		ScrapeInterval: 25 * time.Millisecond,
		Registry:       reg,
		Rules:          []tsdb.Rule{rule},
		Tracer:         tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	srv.Handle(tsdb.PathQuery, db.QueryHandler())
	srv.Handle(tsdb.PathAlerts, db.AlertsHandler())

	alertState := func() tsdb.AlertState {
		var ar tsdb.AlertsReply
		if code := getJSON(t, srv.URL()+tsdb.PathAlerts, &ar); code != http.StatusOK {
			t.Fatalf("/alerts status %d", code)
		}
		if len(ar.Alerts) != 1 {
			t.Fatalf("%d alerts, want 1", len(ar.Alerts))
		}
		return ar.Alerts[0]
	}
	if st := alertState(); st.State != "inactive" {
		t.Fatalf("fresh alert state %q, want inactive", st.State)
	}

	// Flood with unsampled traffic until the alert fires: 8 writers
	// against one slow shard, exactly the shed e2e's overload shape.
	stopFlood := make(chan struct{})
	var wg sync.WaitGroup
	var shed429 atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stopFlood:
					return
				default:
				}
				if code, _ := postBatch(t, srv, rng, "London", "", 8); code == http.StatusTooManyRequests {
					shed429.Add(1)
				}
			}
		}(int64(g))
	}

	deadline := time.Now().Add(20 * time.Second)
	sawFiring := false
	for time.Now().Before(deadline) {
		if st := alertState(); st.State == "firing" {
			sawFiring = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !sawFiring {
		close(stopFlood)
		wg.Wait()
		t.Fatalf("alert never fired (shed 429s: %d)", shed429.Load())
	}
	if shed429.Load() == 0 {
		t.Fatal("alert fired with no 429s flowing")
	}
	// Firing is only reachable through pending, so the walk is proven;
	// the gauge must agree with /alerts while the page is up.
	if v, ok := scrapeMetrics(t, srv).Value("alerts_firing", map[string]string{"rule": rule.Name}); !ok || v != 1 {
		t.Fatalf("alerts_firing{rule=%s} = %v,%v while firing, want 1", rule.Name, v, ok)
	}

	close(stopFlood)
	wg.Wait()

	// With the flood gone the burn clears; pending hysteresis and window
	// drain bound how long resolution takes.
	resolved := false
	for time.Now().Before(deadline) {
		if st := alertState(); st.State == "inactive" {
			resolved = true
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if !resolved {
		t.Fatalf("alert never resolved after the flood stopped: %+v", alertState())
	}
	if st := alertState(); st.Transitions < 3 {
		t.Fatalf("transitions = %d, want >= 3 (pending, firing, resolved)", st.Transitions)
	}
	if v, ok := scrapeMetrics(t, srv).Value("alerts_firing", map[string]string{"rule": rule.Name}); !ok || v != 0 {
		t.Fatalf("alerts_firing = %v,%v after resolve, want 0", v, ok)
	}

	// Both transitions were traced as forced-sampled roots.
	alertTraces := 0
	for _, tr := range tracer.Traces(0, 0) {
		for _, sp := range tr.Spans {
			if sp.Name == "tsdb.alert" {
				alertTraces++
			}
		}
	}
	if alertTraces < 2 {
		t.Fatalf("%d tsdb.alert spans kept, want >= 2 (firing + resolved)", alertTraces)
	}
}
