// Package collector is the measurement-ingest service that turns the
// reproduction's 28-user replay into collection infrastructure: a concurrent
// front end that accepts the study's two record formats — anonymised
// browser-extension records and volunteer-node samples, in the same
// encodings internal/dataset releases them in — over a local HTTP endpoint,
// and aggregates them online.
//
// The aggregation core is sharded: records hash by (city, ISP) onto N
// shards, each owned by a single goroutine fed from a bounded channel, so
// no aggregate state is ever shared between goroutines. Each shard keeps
// streaming per-(city, ISP) statistics — exact counts, sums and domain
// sets, plus a bounded-error quantile sketch (stats.QuantileSketch) for
// PTT percentiles — that converge to the batch pipeline's answers
// (extension.Collector.CityTable) within the sketch's error bound.
//
// Overload behaviour is explicit: with the Block policy a full shard queue
// exerts backpressure on the producer (and, through the HTTP server, on the
// client's TCP connection); with DropNewest the record is shed and counted.
// Closing the aggregator drains every queue before the final snapshot, so a
// graceful shutdown loses nothing that was accepted.
package collector

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
	"starlinkview/internal/stats"
	"starlinkview/internal/trace"
	"starlinkview/internal/wal"
)

// Policy selects what a full shard queue does to new records.
type Policy int

const (
	// Block makes Offer wait for queue space: backpressure propagates to
	// the producer (for HTTP ingest, to the sender's connection).
	Block Policy = iota
	// DropNewest sheds the incoming record and counts it as dropped.
	DropNewest
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a CLI flag value to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "drop":
		return DropNewest, nil
	default:
		return 0, fmt.Errorf("collector: unknown policy %q (want block or drop)", s)
	}
}

// Config parameterises the ingest service.
type Config struct {
	// Shards is the number of single-goroutine aggregation shards
	// (default 4).
	Shards int
	// QueueLen is each shard's bounded queue length (default 1024).
	QueueLen int
	// Policy is the full-queue behaviour (default Block).
	Policy Policy
	// SketchRelErr is the quantile sketches' guaranteed relative error
	// (default stats.DefaultSketchRelErr, 1%).
	SketchRelErr float64
	// Registry receives every metric the collector exposes (nil allocates
	// a private registry). One registry serves one aggregator: sharing a
	// registry between aggregators would merge their per-shard series.
	Registry *obs.Registry
	// WAL, when Dir is set, makes ingest durable: records are logged
	// before they are enqueued and recovered on the next start. Requires
	// the Block policy — with DropNewest, a logged-then-shed record would
	// resurrect on replay.
	WAL WALConfig
	// Tracer, when set, spans the ingest path end to end: the HTTP server
	// opens a root span per request (continuing an incoming traceparent),
	// and batch decode, WAL append, group-commit fsync and shard apply
	// report as children. Nil disables tracing at one pointer test per
	// site.
	Tracer *trace.Tracer
	// Shed arms the trace-driven admission controller (see shed.go): when
	// queue depth or interval ack-latency p99 crosses its watermark,
	// unsampled ingest requests are shed while sampled/forced traffic is
	// always admitted. The zero value disables it.
	Shed ShedConfig

	// applyDelay slows each record application; tests use it to force
	// queue pressure deterministically.
	applyDelay time.Duration
}

func (c *Config) normalize() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.SketchRelErr <= 0 {
		c.SketchRelErr = stats.DefaultSketchRelErr
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// itemKind discriminates the two record families on a shard queue.
type itemKind uint8

const (
	itemExtension itemKind = iota
	itemNode
	// itemBatch carries a slice of rows of a shared zero-copy batch view
	// (see batch.go). It must never index the per-kind [2] metric arrays:
	// batch paths account under itemExtension explicitly, since every row
	// is an extension record.
	itemBatch
)

// item is one queued record, stamped at enqueue so shards can measure
// ingest latency (time spent queued before application). span is valid only
// on a batch's representative record (the first accepted one): the shard
// opens a single shard.apply span per batch from it, so the per-record hot
// path pays one Valid() branch, not one span.
type item struct {
	kind     itemKind
	enqueued time.Time
	span     trace.SpanContext
	ext      extension.Record
	node     dataset.NodeSample

	// Batch fan-out (kind == itemBatch): rows indexes batch.view; the shard
	// applies them all, then releases its reference on the shared view.
	batch *batchApply
	rows  []int32
}

// Aggregator is the sharded online-aggregation core.
type Aggregator struct {
	cfg    Config
	shards []*shard
	met    *metrics
	ready  atomic.Bool

	// mu orders Offer/Snapshot (read side) against Close and Checkpoint
	// (write side), so channels are never sent on after they are closed
	// and checkpoints see a quiesced intake.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	// shed is the armed admission controller (nil when Config.Shed is
	// zero, which keeps the unarmed ingest path untouched).
	shed *shedder

	// views pools zero-copy batch views (and owns the shared string
	// interner) for the pipelined ingest fast path; applyPool recycles the
	// batchApply fan-out headers and their row-partition scratch.
	views     dataset.ViewPool
	applyPool sync.Pool

	// Durability (nil / zero without a WAL).
	wal         *wal.Writer
	walRecovery WALRecovery
	ckptLSN     atomic.Uint64
	ckptStop    chan struct{}
	ckptDone    chan struct{}
}

// NewAggregator starts the shard goroutines and returns the aggregator.
// It panics on an invalid durable configuration; WAL-enabled callers
// should use OpenAggregator, whose startup can fail on real I/O.
func NewAggregator(cfg Config) *Aggregator {
	a, err := OpenAggregator(cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// OpenAggregator builds the aggregator and, when Config.WAL.Dir is set,
// opens the write-ahead log and recovers: the last checkpoint's aggregates
// are restored, the log tail is replayed, and only then do the shard
// goroutines start. The returned aggregator already reflects every record
// that was durable before the previous crash or shutdown.
func OpenAggregator(cfg Config) (*Aggregator, error) {
	cfg.normalize()
	a := &Aggregator{cfg: cfg, shards: make([]*shard, cfg.Shards), met: newMetrics(cfg.Registry)}
	for i := range a.shards {
		a.shards[i] = newShard(i, cfg, a.met)
	}
	if cfg.WAL.Dir != "" {
		if cfg.Policy != Block {
			return nil, errors.New("collector: WAL requires the block policy (drop would resurrect shed records on replay)")
		}
		w, err := wal.Open(wal.Config{
			Dir:            cfg.WAL.Dir,
			SegmentBytes:   cfg.WAL.SegmentBytes,
			FsyncInterval:  cfg.WAL.FsyncInterval,
			MaxSyncWindows: cfg.WAL.MaxSyncWindows,
			FS:             cfg.WAL.FS,
			Instr:          a.met.walInstrumentation(),
		})
		if err != nil {
			return nil, err
		}
		a.wal = w
		if err := a.recoverWAL(); err != nil {
			w.Close()
			return nil, err
		}
		a.met.setRecovery(a.walRecovery)
	}
	for i := range a.shards {
		a.wg.Add(1)
		go a.shards[i].run(&a.wg)
	}
	if a.wal != nil && cfg.WAL.CheckpointInterval > 0 {
		a.ckptStop = make(chan struct{})
		a.ckptDone = make(chan struct{})
		go a.checkpointLoop()
	}
	if cfg.Shed.armed() {
		a.shed = newShedder(a, cfg.Shed)
		go a.shed.run()
	}
	// Scrape-time gauges: queue depths change record to record; the WAL's
	// positions live behind its mutex. Both are read on demand instead of
	// being pushed per event.
	cfg.Registry.OnGather(a.gatherGauges)
	if cfg.Tracer != nil {
		registerTracerGauges(cfg.Registry, cfg.Tracer)
	}
	a.ready.Store(true)
	return a, nil
}

// gatherGauges refreshes the scrape-time gauges. It runs on every
// /metrics render and is safe whatever the aggregator's lifecycle state.
func (a *Aggregator) gatherGauges() {
	for _, sh := range a.shards {
		sh.met.queueDepth.Set(float64(len(sh.ch)))
	}
	if err := a.Health(); err == nil {
		a.met.ready.Set(1)
	} else {
		a.met.ready.Set(0)
	}
	if a.wal != nil {
		ws := a.wal.Stats()
		a.met.walSegments.Set(float64(ws.Segments))
		a.met.walAppendedLSN.Set(float64(ws.AppendedLSN))
		a.met.walDurableLSN.Set(float64(ws.DurableLSN))
		a.met.walCheckpointLSN.Set(float64(a.ckptLSN.Load()))
	}
}

// Registry returns the registry holding the aggregator's metrics.
func (a *Aggregator) Registry() *obs.Registry { return a.cfg.Registry }

// Health reports whether the aggregator can uphold its ingest contract:
// nil once startup recovery completed, and an error when the WAL writer
// has been poisoned by an IO failure (nothing further will be
// acknowledged, so load balancers should stop routing here).
func (a *Aggregator) Health() error {
	if !a.ready.Load() {
		return errors.New("collector: recovery in progress")
	}
	if a.wal != nil {
		if err := a.wal.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Stats derives the ingest counters from the metrics registry — the same
// series /metrics exposes, so the JSON and Prometheus views cannot
// disagree. Unlike Snapshot it copies no aggregate state.
func (a *Aggregator) Stats() StatsReply {
	var reply StatsReply
	for _, sh := range a.shards {
		st := sh.stats()
		reply.Accepted += st.Accepted
		reply.Dropped += st.Dropped
		reply.Processed += st.Processed
		reply.Shards = append(reply.Shards, st)
	}
	if ws := a.WALStats(); ws.Enabled {
		reply.WAL = &ws
	}
	return reply
}

// Config returns the normalised configuration.
func (a *Aggregator) Config() Config { return a.cfg }

// shardHash is FNV-1a over k1, a zero separator, and k2 — the exact byte
// stream hash/fnv.New32a would see, inlined so the hot ingest path pays no
// hasher allocation and no interface calls. Checkpoint restore routes
// recovered groups with the same function, so the two must never diverge;
// TestShardHashMatchesFNV pins the equivalence.
func shardHash(k1, k2 string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(k1); i++ {
		h = (h ^ uint32(k1[i])) * prime32
	}
	h *= prime32 // the zero separator: h ^ 0 == h
	for i := 0; i < len(k2); i++ {
		h = (h ^ uint32(k2[i])) * prime32
	}
	return h
}

// shardIndex maps an aggregation key to its owning shard's index.
func (a *Aggregator) shardIndex(k1, k2 string) int {
	return int(shardHash(k1, k2) % uint32(len(a.shards)))
}

// shardFor hashes an aggregation key to its owning shard, so every record
// of one (city, ISP) — or one (node, kind) — lands on the same goroutine.
func (a *Aggregator) shardFor(k1, k2 string) *shard {
	return a.shards[a.shardIndex(k1, k2)]
}

// OfferExtension submits one browsing record. It reports false when the
// record was shed (DropNewest under pressure, or after Close).
func (a *Aggregator) OfferExtension(r extension.Record) bool {
	return a.offer(a.shardFor(r.City, r.ISP), item{kind: itemExtension, ext: r})
}

// OfferExtensionSpan is OfferExtension carrying a span context through the
// shard queue: the shard reports a shard.apply child span and stamps the
// apply-latency histogram with the trace as an exemplar. Pass the zero
// context for untraced records.
func (a *Aggregator) OfferExtensionSpan(r extension.Record, sc trace.SpanContext) bool {
	return a.offer(a.shardFor(r.City, r.ISP), item{kind: itemExtension, ext: r, span: sc})
}

// OfferNodeSample submits one volunteer-node sample.
func (a *Aggregator) OfferNodeSample(s dataset.NodeSample) bool {
	return a.offer(a.shardFor(s.Node, s.Kind), item{kind: itemNode, node: s})
}

// OfferNodeSampleSpan is OfferNodeSample carrying a span context; see
// OfferExtensionSpan.
func (a *Aggregator) OfferNodeSampleSpan(s dataset.NodeSample, sc trace.SpanContext) bool {
	return a.offer(a.shardFor(s.Node, s.Kind), item{kind: itemNode, node: s, span: sc})
}

func (a *Aggregator) offer(sh *shard, it item) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if a.closed {
		sh.met.dropped[it.kind].Inc()
		return false
	}
	// Log before enqueue: once a record can reach the aggregates it is in
	// the WAL, so a crash at any later point replays it. Durability of the
	// ack is the caller's job (SyncWAL) — group commit batches the fsync.
	if a.wal != nil {
		sp := a.cfg.Tracer.StartChild(it.span, "wal.append")
		lsn, err := a.appendWAL(it)
		if err != nil {
			sp.SetError(err)
			sp.Finish()
			sh.met.dropped[it.kind].Inc()
			return false
		}
		sp.SetInt("lsn", int64(lsn))
		sp.Finish()
	}
	it.enqueued = time.Now()
	if a.cfg.Policy == Block {
		sh.ch <- it
		sh.met.accepted[it.kind].Inc()
		return true
	}
	select {
	case sh.ch <- it:
		sh.met.accepted[it.kind].Inc()
		return true
	default:
		sh.met.dropped[it.kind].Inc()
		return false
	}
}

// Snapshot returns the current aggregate state. While the aggregator runs,
// each shard is captured atomically (between record applications) but the
// shards are visited in turn; after Close the final, fully-drained state is
// returned.
func (a *Aggregator) Snapshot() *Snapshot {
	a.mu.RLock()
	if !a.closed {
		parts := make([]shardSnap, len(a.shards))
		for i, sh := range a.shards {
			reply := make(chan shardSnap, 1)
			sh.ctl <- reply
			parts[i] = <-reply
		}
		a.mu.RUnlock()
		return mergeSnapshot(parts, a.cfg.SketchRelErr)
	}
	a.mu.RUnlock()
	// After Close the goroutines have exited (wg.Wait is the memory
	// barrier), so shard state can be read directly.
	a.wg.Wait()
	parts := make([]shardSnap, len(a.shards))
	for i, sh := range a.shards {
		parts[i] = sh.snapshot()
	}
	return mergeSnapshot(parts, a.cfg.SketchRelErr)
}

// Close stops intake and drains every shard queue before returning: all
// accepted records are reflected in subsequent Snapshots. With a WAL it
// then writes a final checkpoint covering the fully-drained state and
// closes the log, so the next start restores without replaying. It is
// idempotent; only the first call performs the shutdown work.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		a.wg.Wait()
		return nil
	}
	a.closed = true
	for _, sh := range a.shards {
		close(sh.ch)
	}
	a.mu.Unlock()
	a.wg.Wait()
	if a.shed != nil {
		a.shed.close()
	}
	if a.wal == nil {
		return nil
	}
	if a.ckptStop != nil {
		close(a.ckptStop)
		<-a.ckptDone
	}
	// The goroutines have exited and drained, so direct shard reads are the
	// final state — exactly the records appended to the log.
	parts := make([]shardSnap, len(a.shards))
	for i, sh := range a.shards {
		parts[i] = sh.snapshot()
	}
	a.mu.Lock()
	err := a.writeCheckpointLocked(parts)
	a.mu.Unlock()
	if cerr := a.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
