package collector

import (
	"context"
	"math"
	"testing"
	"time"

	"starlinkview/internal/core"
	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
)

// TestStreamedMatchesBatchAggregation is the subsystem's contract: a full
// generated browsing campaign, streamed record-by-record through the
// collector's wire protocol as it is collected, must drain to the same
// per-city aggregates the batch pipeline computes — counts and distinct
// domains exactly, median PTTs within the quantile sketch's error bound.
func TestStreamedMatchesBatchAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign stream")
	}
	const relErr = 0.01
	srv := NewServer(Config{Shards: 4, QueueLen: 512, SketchRelErr: relErr})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL(), ClientConfig{BatchSize: 256, FlushEvery: 50 * time.Millisecond})

	cfg := core.QuickConfig()
	cfg.BrowsingDays = 14
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming hook ships each record the moment the extension
	// pipeline collects it — the path a deployed extension would use.
	var streamErr error
	study.Collector.OnRecord = func(r extension.Record) {
		if err := client.AddRecord(r); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	if err := study.RunBrowsing(); err != nil {
		t.Fatal(err)
	}
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	records := study.Collector.Records()
	if len(records) == 0 {
		t.Fatal("campaign produced no records")
	}
	snap := srv.Aggregator().Snapshot()
	if snap.Processed != uint64(len(records)) || snap.Dropped != 0 {
		t.Fatalf("streamed %d records, server processed %d (dropped %d)",
			len(records), snap.Processed, snap.Dropped)
	}

	cities := study.Collector.Cities()
	gotCities := snap.Cities()
	if len(gotCities) != len(cities) {
		t.Fatalf("streamed cities %v != batch cities %v", gotCities, cities)
	}
	batch := study.Collector.CityTable(cities)
	streamed := snap.CityTable(cities)
	for i, want := range batch {
		got := streamed[i]
		if got.City != want.City {
			t.Fatalf("row %d city %q != %q", i, got.City, want.City)
		}
		// Counts and domain sets must match exactly.
		if got.StarlinkReqs != want.StarlinkReqs || got.NonSLReqs != want.NonSLReqs {
			t.Errorf("%s: reqs SL=%d/%d nonSL=%d/%d (streamed/batch)",
				want.City, got.StarlinkReqs, want.StarlinkReqs, got.NonSLReqs, want.NonSLReqs)
		}
		if got.StarlinkDomains != want.StarlinkDomains || got.NonSLDomains != want.NonSLDomains {
			t.Errorf("%s: domains SL=%d/%d nonSL=%d/%d (streamed/batch)",
				want.City, got.StarlinkDomains, want.StarlinkDomains, got.NonSLDomains, want.NonSLDomains)
		}
		// Medians converge within the sketch bound (doubled for headroom:
		// interpolation spans two buckets, each within the bound).
		checkMedian(t, want.City+" starlink", got.StarlinkMedianPTT, want.StarlinkMedianPTT, 2*relErr)
		checkMedian(t, want.City+" non-SL", got.NonSLMedianPTT, want.NonSLMedianPTT, 2*relErr)
	}
}

// TestRestartRecoversStreamedCampaign is the durability contract end to
// end: half the campaign streams into a WAL-enabled server, the server
// shuts down (as on SIGTERM), a fresh server recovers from the same WAL
// directory, the rest streams in — and the final /snapshot city table must
// still match the batch pipeline as if nothing had been interrupted.
func TestRestartRecoversStreamedCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign stream with restart")
	}
	const relErr = 0.01
	walDir := t.TempDir()
	newSrv := func() *Server {
		srv, err := OpenServer(Config{
			Shards: 4, QueueLen: 512, SketchRelErr: relErr,
			WAL: WALConfig{
				Dir:                walDir,
				FsyncInterval:      time.Millisecond,
				SegmentBytes:       1 << 20,
				CheckpointInterval: 50 * time.Millisecond,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		return srv
	}
	shutdown := func(srv *Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
	}
	stream := func(srv *Server, records []extension.Record) {
		client := NewClient(srv.URL(), ClientConfig{BatchSize: 256, FlushEvery: 50 * time.Millisecond})
		for _, r := range records {
			if err := client.AddRecord(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := client.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cfg := core.QuickConfig()
	cfg.BrowsingDays = 14
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.RunBrowsing(); err != nil {
		t.Fatal(err)
	}
	records := study.Collector.Records()
	if len(records) < 2 {
		t.Fatal("campaign produced too few records")
	}
	half := len(records) / 2

	// Session 1: first half, plus a node sample that must survive too.
	srv1 := newSrv()
	stream(srv1, records[:half])
	client := NewClient(srv1.URL(), ClientConfig{BatchSize: 8})
	sample := dataset.NodeSample{
		Node: "Wiltshire", Kind: "iperf",
		At: time.Date(2022, 4, 11, 9, 0, 0, 0, time.UTC), DownMbps: 147.5, UpMbps: 11.3, PingMs: 41,
	}
	if err := client.AddNodeSample(sample); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	shutdown(srv1)

	// Session 2: recover from the WAL directory and stream the rest.
	srv2 := newSrv()
	rec := srv2.Aggregator().WALRecovery()
	if got := rec.RestoredRecords + rec.ReplayedRecords; got != uint64(half)+1 {
		t.Fatalf("recovery rebuilt %d records (restored %d, replayed %d), want %d",
			got, rec.RestoredRecords, rec.ReplayedRecords, half+1)
	}
	if rec.SkippedCorrupt != 0 {
		t.Fatalf("recovery skipped %d records after a clean shutdown", rec.SkippedCorrupt)
	}
	stream(srv2, records[half:])
	shutdown(srv2)

	snap := srv2.Aggregator().Snapshot()
	if snap.Processed != uint64(len(records))+1 || snap.Dropped != 0 {
		t.Fatalf("processed %d records (dropped %d), want %d",
			snap.Processed, snap.Dropped, len(records)+1)
	}
	if len(snap.Nodes) != 1 || snap.Nodes[0].Node != sample.Node || snap.Nodes[0].Count != 1 {
		t.Fatalf("node aggregate lost across restart: %+v", snap.Nodes)
	}
	if got := snap.Nodes[0].MeanDown; math.Abs(got-sample.DownMbps) > 1e-9 {
		t.Fatalf("node mean down %v, want %v", got, sample.DownMbps)
	}

	cities := study.Collector.Cities()
	batch := study.Collector.CityTable(cities)
	streamed := snap.CityTable(cities)
	for i, want := range batch {
		got := streamed[i]
		if got.City != want.City {
			t.Fatalf("row %d city %q != %q", i, got.City, want.City)
		}
		if got.StarlinkReqs != want.StarlinkReqs || got.NonSLReqs != want.NonSLReqs {
			t.Errorf("%s: reqs SL=%d/%d nonSL=%d/%d (restarted/batch)",
				want.City, got.StarlinkReqs, want.StarlinkReqs, got.NonSLReqs, want.NonSLReqs)
		}
		if got.StarlinkDomains != want.StarlinkDomains || got.NonSLDomains != want.NonSLDomains {
			t.Errorf("%s: domains SL=%d/%d nonSL=%d/%d (restarted/batch)",
				want.City, got.StarlinkDomains, want.StarlinkDomains, got.NonSLDomains, want.NonSLDomains)
		}
		checkMedian(t, want.City+" starlink", got.StarlinkMedianPTT, want.StarlinkMedianPTT, 2*relErr)
		checkMedian(t, want.City+" non-SL", got.NonSLMedianPTT, want.NonSLMedianPTT, 2*relErr)
	}

	// Session 3: a pure restart with no new traffic restores everything
	// from the final checkpoint alone — nothing left to replay.
	srv3 := newSrv()
	rec = srv3.Aggregator().WALRecovery()
	if rec.ReplayedRecords != 0 || rec.RestoredRecords != uint64(len(records))+1 {
		t.Fatalf("post-shutdown recovery: restored %d replayed %d, want all %d from checkpoint",
			rec.RestoredRecords, rec.ReplayedRecords, len(records)+1)
	}
	shutdown(srv3)
}

func checkMedian(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Errorf("%s: streamed median %v, batch has no samples", label, got)
		}
		return
	}
	if math.Abs(got-want) > tol*want+1e-9 {
		t.Errorf("%s: streamed median %.3f vs batch %.3f (err %.4f > tol %.4f)",
			label, got, want, math.Abs(got-want)/want, tol)
	}
}

// TestSketchMatchesBatchQuantiles pins the convergence at the stats layer
// too: the same PTT samples, batch-quantiled and sketch-quantiled.
func TestSketchMatchesBatchQuantiles(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.BrowsingDays = 7
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.RunBrowsing(); err != nil {
		t.Fatal(err)
	}
	ptts := study.Collector.PTTSamples(func(r extension.Record) bool { return true })
	sk, err := stats.NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ptts {
		sk.Add(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		want := stats.Quantile(ptts, q)
		got := sk.Quantile(q)
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("q=%v: sketch %v vs batch %v", q, got, want)
		}
	}
}
