package collector

import (
	"context"
	"math"
	"testing"
	"time"

	"starlinkview/internal/core"
	"starlinkview/internal/extension"
	"starlinkview/internal/stats"
)

// TestStreamedMatchesBatchAggregation is the subsystem's contract: a full
// generated browsing campaign, streamed record-by-record through the
// collector's wire protocol as it is collected, must drain to the same
// per-city aggregates the batch pipeline computes — counts and distinct
// domains exactly, median PTTs within the quantile sketch's error bound.
func TestStreamedMatchesBatchAggregation(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign stream")
	}
	const relErr = 0.01
	srv := NewServer(Config{Shards: 4, QueueLen: 512, SketchRelErr: relErr})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	client := NewClient(srv.URL(), ClientConfig{BatchSize: 256, FlushEvery: 50 * time.Millisecond})

	cfg := core.QuickConfig()
	cfg.BrowsingDays = 14
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The streaming hook ships each record the moment the extension
	// pipeline collects it — the path a deployed extension would use.
	var streamErr error
	study.Collector.OnRecord = func(r extension.Record) {
		if err := client.AddRecord(r); err != nil && streamErr == nil {
			streamErr = err
		}
	}
	if err := study.RunBrowsing(); err != nil {
		t.Fatal(err)
	}
	if streamErr != nil {
		t.Fatal(streamErr)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	records := study.Collector.Records()
	if len(records) == 0 {
		t.Fatal("campaign produced no records")
	}
	snap := srv.Aggregator().Snapshot()
	if snap.Processed != uint64(len(records)) || snap.Dropped != 0 {
		t.Fatalf("streamed %d records, server processed %d (dropped %d)",
			len(records), snap.Processed, snap.Dropped)
	}

	cities := study.Collector.Cities()
	gotCities := snap.Cities()
	if len(gotCities) != len(cities) {
		t.Fatalf("streamed cities %v != batch cities %v", gotCities, cities)
	}
	batch := study.Collector.CityTable(cities)
	streamed := snap.CityTable(cities)
	for i, want := range batch {
		got := streamed[i]
		if got.City != want.City {
			t.Fatalf("row %d city %q != %q", i, got.City, want.City)
		}
		// Counts and domain sets must match exactly.
		if got.StarlinkReqs != want.StarlinkReqs || got.NonSLReqs != want.NonSLReqs {
			t.Errorf("%s: reqs SL=%d/%d nonSL=%d/%d (streamed/batch)",
				want.City, got.StarlinkReqs, want.StarlinkReqs, got.NonSLReqs, want.NonSLReqs)
		}
		if got.StarlinkDomains != want.StarlinkDomains || got.NonSLDomains != want.NonSLDomains {
			t.Errorf("%s: domains SL=%d/%d nonSL=%d/%d (streamed/batch)",
				want.City, got.StarlinkDomains, want.StarlinkDomains, got.NonSLDomains, want.NonSLDomains)
		}
		// Medians converge within the sketch bound (doubled for headroom:
		// interpolation spans two buckets, each within the bound).
		checkMedian(t, want.City+" starlink", got.StarlinkMedianPTT, want.StarlinkMedianPTT, 2*relErr)
		checkMedian(t, want.City+" non-SL", got.NonSLMedianPTT, want.NonSLMedianPTT, 2*relErr)
	}
}

func checkMedian(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(want) {
		if !math.IsNaN(got) {
			t.Errorf("%s: streamed median %v, batch has no samples", label, got)
		}
		return
	}
	if math.Abs(got-want) > tol*want+1e-9 {
		t.Errorf("%s: streamed median %.3f vs batch %.3f (err %.4f > tol %.4f)",
			label, got, want, math.Abs(got-want)/want, tol)
	}
}

// TestSketchMatchesBatchQuantiles pins the convergence at the stats layer
// too: the same PTT samples, batch-quantiled and sketch-quantiled.
func TestSketchMatchesBatchQuantiles(t *testing.T) {
	cfg := core.QuickConfig()
	cfg.BrowsingDays = 7
	study, err := core.NewStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.RunBrowsing(); err != nil {
		t.Fatal(err)
	}
	ptts := study.Collector.PTTSamples(func(r extension.Record) bool { return true })
	sk, err := stats.NewQuantileSketch(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range ptts {
		sk.Add(v)
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		want := stats.Quantile(ptts, q)
		got := sk.Quantile(q)
		if math.Abs(got-want) > 0.02*want {
			t.Fatalf("q=%v: sketch %v vs batch %v", q, got, want)
		}
	}
}
