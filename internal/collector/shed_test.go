package collector

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
)

// TestShedApplyHysteresis drives the watermark state machine with synthetic
// signals: entry at the high watermarks, exit only once BOTH the queue has
// drained to the low watermark and the interval p99 has cleared half the
// latency watermark — no flapping at a threshold.
func TestShedApplyHysteresis(t *testing.T) {
	a := NewAggregator(Config{Shards: 1, QueueLen: 8, Registry: obs.NewRegistry()})
	defer a.Close()
	s := newShedder(a, ShedConfig{
		QueueHighPct:  0.8,
		AckLatencyP99: 100 * time.Millisecond,
	})
	if s.cfg.QueueLowPct != 0.4 {
		t.Fatalf("QueueLowPct default = %v, want QueueHighPct/2", s.cfg.QueueLowPct)
	}

	state := func() int32 { return s.state.Load() }
	if state() != shedAdmit {
		t.Fatal("fresh shedder must admit")
	}

	// Below both watermarks: stays admitting.
	s.apply(0.5, 0.01, true)
	if state() != shedAdmit {
		t.Fatalf("state %d after calm signals, want admit", state())
	}
	if reason, ok := s.admit(false); !ok || reason != "" {
		t.Fatalf("admit(false) while admitting = %q,%v", reason, ok)
	}

	// Queue crosses the high watermark.
	s.apply(0.85, 0.01, true)
	if state() != shedQueueDepth {
		t.Fatalf("state %d after fill 0.85, want queue_depth", state())
	}
	if reason, ok := s.admit(false); ok || reason != "queue_depth" {
		t.Fatalf("admit(false) while shedding = %q,%v", reason, ok)
	}
	if _, ok := s.admit(true); !ok {
		t.Fatal("sampled traffic must always be admitted")
	}

	// Drained below high but not below low: still shedding (hysteresis).
	s.apply(0.6, 0.01, true)
	if state() != shedQueueDepth {
		t.Fatalf("state %d at fill 0.6 (low=0.4), want still shedding", state())
	}
	// Queue clear but p99 at 90ms: >= half the 100ms watermark, not clear.
	s.apply(0.3, 0.09, true)
	if state() != shedQueueDepth {
		t.Fatalf("state %d with p99 90ms (exit needs <50ms), want still shedding", state())
	}
	// Both clear: back to admitting.
	s.apply(0.3, 0.01, true)
	if state() != shedAdmit {
		t.Fatalf("state %d after both signals cleared, want admit", state())
	}

	// Latency watermark trips independently of the queue.
	s.apply(0.1, 0.2, true)
	if state() != shedAckLatency {
		t.Fatalf("state %d with p99 200ms, want ack_latency", state())
	}
	if reason, ok := s.admit(false); ok || reason != "ack_latency" {
		t.Fatalf("admit(false) = %q,%v, want ack_latency shed", reason, ok)
	}
	// No acks this interval (p99ok=false) counts as clear: a quiet
	// collector is not overloaded.
	s.apply(0.1, 0, false)
	if state() != shedAdmit {
		t.Fatalf("state %d after quiet interval, want admit", state())
	}

	if got := s.transitions.Value(); got != 4 {
		t.Fatalf("transitions = %d, want 4", got)
	}
	if s.shedTotal[shedQueueDepth].Value() != 1 || s.shedTotal[shedAckLatency].Value() != 1 {
		t.Fatalf("shed counters = %d,%d, want 1,1",
			s.shedTotal[shedQueueDepth].Value(), s.shedTotal[shedAckLatency].Value())
	}
}

// TestShedUnarmedIsInvisible pins the default-off contract: no watermarks
// means no controller, every request admitted, and no shed series in the
// exposition.
func TestShedUnarmedIsInvisible(t *testing.T) {
	reg := obs.NewRegistry()
	a := NewAggregator(Config{Shards: 1, Registry: reg})
	defer a.Close()
	if a.shed != nil {
		t.Fatal("unarmed config must not start a shedder")
	}
	if reason, ok := a.Admit(false); !ok || reason != "" {
		t.Fatalf("Admit on unarmed aggregator = %q,%v", reason, ok)
	}
	if a.ShedState() != 0 {
		t.Fatalf("ShedState = %d, want 0", a.ShedState())
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte("collector_shed")) {
		t.Fatalf("unarmed exposition leaks shed series:\n%s", buf.String())
	}
}

// TestShedRejectAnnotatesRootSpan checks the reject path's observability:
// 429 + Retry-After on the wire, and a shed event + attribute on the
// request's root span so kept traces show where admission control cut in.
func TestShedRejectAnnotatesRootSpan(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 3})
	sp := tracer.StartRoot("http POST "+PathIngestExtension, trace.SpanContext{Sampled: true})
	r := httptest.NewRequest(http.MethodPost, PathIngestExtension, nil)
	r = r.WithContext(trace.NewContext(r.Context(), sp))
	w := httptest.NewRecorder()
	shedReject(w, r, "queue_depth")
	sp.Finish()

	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") != "1" {
		t.Fatalf("Retry-After %q, want 1", w.Header().Get("Retry-After"))
	}
	var reply struct {
		IngestReply
		Error string `json:"error"`
	}
	if err := json.NewDecoder(w.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Accepted != 0 || reply.Error == "" {
		t.Fatalf("shed reply = %+v, want zero counts and an error", reply)
	}

	traces := tracer.Traces(0, 0)
	if len(traces) != 1 {
		t.Fatalf("%d kept traces, want 1", len(traces))
	}
	root := traces[0].Spans[0]
	foundEvent, foundAttr := false, false
	for _, ev := range root.Events {
		if ev.Name == "shed" {
			foundEvent = true
		}
	}
	for _, at := range root.Attrs {
		if at.Key == "shed" && at.Value == "queue_depth" {
			foundAttr = true
		}
	}
	if !foundEvent || !foundAttr {
		t.Fatalf("shed event/attr missing on root span (event %v, attr %v): %+v",
			foundEvent, foundAttr, root)
	}
}

// TestShedOverloadKeepsSampledTraffic is the acceptance e2e (run under
// -race by make check): a single slow shard is flooded with unsampled
// ingest while sampled requests trickle in. The controller must trip on
// queue depth, shed some unsampled requests with 429, admit EVERY sampled
// request, land every sampled record in the snapshot, export
// collector_shed_total, and disarm once the flood stops.
func TestShedOverloadKeepsSampledTraffic(t *testing.T) {
	tracer := trace.New(trace.Config{Seed: 11})
	srv, err := OpenServer(Config{
		Shards:     1,
		QueueLen:   4,
		Tracer:     tracer,
		applyDelay: 2 * time.Millisecond,
		Shed: ShedConfig{
			QueueHighPct: 0.5,
			EvalInterval: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	post := func(rng *rand.Rand, city, traceparent string, n int) (int, IngestReply) {
		records := make([]extension.Record, n)
		for i := range records {
			records[i] = testRecord(rng, city, "starlink")
		}
		payload, err := EncodeExtensionBatch(records)
		if err != nil {
			t.Error(err)
			return 0, IngestReply{}
		}
		req, err := http.NewRequest(http.MethodPost, srv.URL()+PathIngestExtension, bytes.NewReader(payload))
		if err != nil {
			t.Error(err)
			return 0, IngestReply{}
		}
		req.Header.Set("Content-Type", ExtensionContentType)
		if traceparent != "" {
			req.Header.Set(trace.TraceparentHeader, traceparent)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Error(err)
			return 0, IngestReply{}
		}
		defer resp.Body.Close()
		var reply IngestReply
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
				t.Error(err)
			}
		} else {
			io.Copy(io.Discard, resp.Body)
		}
		return resp.StatusCode, reply
	}

	var (
		wg           sync.WaitGroup
		shed, served atomic.Int64
		sampledSent  atomic.Int64
	)
	// Unsampled flood: 8 writers hammering the one slow shard.
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 25; i++ {
				switch code, _ := post(rng, "London", "", 8); code {
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusOK:
					served.Add(1)
				default:
					t.Errorf("unsampled POST: status %d, want 200 or 429", code)
				}
			}
		}(int64(g))
	}
	// Sampled traffic: unique trace IDs, sampled bit set. Every one of
	// these must get through no matter how hard the flood pushes.
	const sampledPosts, perSampled = 40, 3
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(writer int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + writer)))
			for i := 0; i < sampledPosts/4; i++ {
				tp := fmt.Sprintf("00-%032x-%016x-01", writer*1000+i+1, writer*1000+i+1)
				code, reply := post(rng, "SampledCity", tp, perSampled)
				if code != http.StatusOK || reply.Accepted != perSampled {
					t.Errorf("sampled POST shed: status %d accepted %d, want 200/%d",
						code, reply.Accepted, perSampled)
					continue
				}
				sampledSent.Add(int64(perSampled))
			}
		}(g)
	}
	wg.Wait()

	if shed.Load() == 0 {
		t.Fatalf("no unsampled request was shed (served %d); overload never tripped", served.Load())
	}
	t.Logf("unsampled: %d shed, %d served; sampled records: %d",
		shed.Load(), served.Load(), sampledSent.Load())

	// Every sampled record must reach the aggregate: shedding loses only
	// unwatched work.
	want := sampledSent.Load()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got int64
		for _, g := range srv.Aggregator().Snapshot().Groups {
			if g.City == "SampledCity" {
				got += int64(g.Count)
			}
		}
		if got == want {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sampled records in snapshot = %d, want %d", got, want)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The shed counter is on the wire, and the controller disarms once the
	// flood is gone and the queue drains below the low watermark.
	samples := scrapeMetrics(t, srv)
	v, ok := samples.Value("collector_shed_total", map[string]string{"reason": "queue_depth"})
	if !ok || int64(v) != shed.Load() {
		t.Fatalf("collector_shed_total{reason=queue_depth} = %v,%v want %d", v, ok, shed.Load())
	}
	for {
		if srv.Aggregator().ShedState() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller still shedding (state %d) after drain", srv.Aggregator().ShedState())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
