package measure

import (
	"testing"
	"time"

	"starlinkview/internal/ispnet"
	"starlinkview/internal/netsim"
	"starlinkview/internal/orbit"
)

var testEpoch = time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)

func testConstellation(t *testing.T) *orbit.Constellation {
	t.Helper()
	c, err := orbit.GenerateShell(orbit.ShellConfig{
		Name: "STARLINK", AltitudeKm: 550, InclinationDeg: 53,
		Planes: 24, SatsPerPlane: 22, PhasingF: 13,
		Epoch: testEpoch, FirstSatNum: 44000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildKind(t *testing.T, kind ispnet.Kind, seed int64) (*netsim.Sim, *ispnet.Built) {
	t.Helper()
	sim := netsim.NewSim(seed)
	b, err := ispnet.Build(ispnet.Config{
		Kind: kind, City: ispnet.London, Server: ispnet.NVirginiaDC,
		Constellation: testConstellation(t), Epoch: testEpoch, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, b
}

func TestPingBroadband(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 1)
	res, err := Ping(sim, b.Path, 10, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Received < 9 {
		t.Fatalf("received %d/10 pings on a clean path", res.Received)
	}
	// London -> N. Virginia broadband: ~80-100 ms RTT.
	if avg := res.AvgRTT(); avg < 70*time.Millisecond || avg > 120*time.Millisecond {
		t.Errorf("avg RTT = %v, want 70-120ms", avg)
	}
	if res.MinRTT() > res.AvgRTT() {
		t.Error("min RTT above average")
	}
}

func TestPingValidation(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 2)
	if _, err := Ping(sim, b.Path, 0, time.Second); err == nil {
		t.Error("want error for zero count")
	}
}

func TestPingStarlinkSlowerThanBroadband(t *testing.T) {
	simS, bS := buildKind(t, ispnet.Starlink, 3)
	simB, bB := buildKind(t, ispnet.Broadband, 3)
	simC, bC := buildKind(t, ispnet.Cellular, 3)
	rS, err := Ping(simS, bS.Path, 20, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := Ping(simB, bB.Path, 20, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rC, err := Ping(simC, bC.Path, 20, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 5's ordering: broadband < starlink < cellular.
	if !(rB.MinRTT() < rS.MinRTT() && rS.MinRTT() < rC.MinRTT()) {
		t.Errorf("RTT ordering broken: bb=%v sl=%v cell=%v", rB.MinRTT(), rS.MinRTT(), rC.MinRTT())
	}
}

func TestTracerouteBroadband(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 4)
	hops, err := Traceroute(sim, b.Path, TracerouteOptions{ProbesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != len(b.HopAddrs) {
		t.Fatalf("traceroute found %d hops, path has %d", len(hops), len(b.HopAddrs))
	}
	for i, h := range hops {
		if h.Addr != b.HopAddrs[i] {
			t.Errorf("hop %d addr = %q, want %q", i+1, h.Addr, b.HopAddrs[i])
		}
		if len(h.RTTs) == 0 {
			t.Errorf("hop %d: no replies", i+1)
		}
	}
	// Median RTT is non-decreasing in broad strokes: final hop >> first hop.
	if avg(hops[len(hops)-1].RTTs) < avg(hops[0].RTTs) {
		t.Error("final hop RTT below first hop")
	}
}

func TestTracerouteStarlinkFirstHopDominates(t *testing.T) {
	sim, b := buildKind(t, ispnet.Starlink, 5)
	hops, err := Traceroute(sim, b.Path, TracerouteOptions{ProbesPerHop: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) < 3 {
		t.Fatalf("only %d hops", len(hops))
	}
	// The first hop crosses the bent pipe: ~30+ ms, far more than a
	// terrestrial first hop.
	first := avg(hops[0].RTTs)
	if first < 20*time.Millisecond {
		t.Errorf("starlink first-hop RTT = %v, want >= 20ms (bent pipe)", first)
	}
}

func TestMTRAggregates(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 6)
	hops, err := MTR(sim, b.Path, 4, TracerouteOptions{ProbesPerHop: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hops {
		if len(h.RTTs) < 6 { // 4 runs x 2 probes, allowing a little loss
			t.Errorf("hop %d has %d samples, want ~8", h.TTL, len(h.RTTs))
		}
	}
	if _, err := MTR(sim, b.Path, 0, TracerouteOptions{}); err == nil {
		t.Error("want error for zero runs")
	}
}

func TestMaxMinEstimate(t *testing.T) {
	sim, b := buildKind(t, ispnet.Starlink, 7)
	// Hop 1 (the bent pipe) and the full path, as in Table 2.
	wireless, err := MaxMinEstimate(sim, b.Path, 1, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	full, err := MaxMinEstimate(sim, b.Path, len(b.HopAddrs), 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if wireless.MedianMs <= 0 {
		t.Error("bent-pipe queueing estimate is zero; jitter model inactive")
	}
	if !(wireless.MinMs <= wireless.MedianMs && wireless.MedianMs <= wireless.MaxMs) {
		t.Errorf("unordered estimate: %+v", wireless)
	}
	// The wireless link should contribute a large share of the whole path's
	// queueing delay (the paper's central Table 2 finding).
	if wireless.MedianMs < 0.3*full.MedianMs {
		t.Errorf("bent pipe median queueing %v ms not a large share of path %v ms", wireless.MedianMs, full.MedianMs)
	}
	if _, err := MaxMinEstimate(sim, b.Path, 0, 3, 3); err == nil {
		t.Error("want error for TTL 0")
	}
}

func TestIperfTCPCleanBroadband(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 8)
	res, err := IperfTCP(sim, b.Path, "cubic", 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Upload direction is capped by the broadband uplink (100 Mbps).
	if res.ThroughputBps < 40e6 || res.ThroughputBps > 100e6 {
		t.Errorf("upload throughput = %.1f Mbps, want 40-100", res.ThroughputBps/1e6)
	}
	if _, err := IperfTCP(sim, b.Path, "cubic", 0); err == nil {
		t.Error("want error for zero duration")
	}
	if _, err := IperfTCP(sim, b.Path, "nope", time.Second); err == nil {
		t.Error("want error for unknown algorithm")
	}
}

func TestIperfTCPReverseDownload(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 9)
	res, err := IperfTCPReverse(sim, b.Path, "cubic", 8*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Download at up to 350 Mbps.
	if res.ThroughputBps < 100e6 {
		t.Errorf("download throughput = %.1f Mbps, want > 100", res.ThroughputBps/1e6)
	}
}

func TestIperfUDPLossOnStarlink(t *testing.T) {
	sim, b := buildKind(t, ispnet.Starlink, 10)
	res, err := IperfUDP(sim, b.Path, 20e6, 10*time.Second, true)
	if err != nil {
		t.Fatal(err)
	}
	if res.SentPackets == 0 {
		t.Fatal("no packets sent")
	}
	if res.LossPct < 0 || res.LossPct > 100 {
		t.Fatalf("loss = %v%%", res.LossPct)
	}
	if res.ThroughputBps <= 0 {
		t.Error("no UDP throughput measured")
	}
	if _, err := IperfUDP(sim, b.Path, 0, time.Second, false); err == nil {
		t.Error("want error for zero rate")
	}
}

func TestSpeedtestBroadband(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 11)
	res, err := Speedtest(sim, b.Path, SpeedtestOptions{PhaseDuration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.PingMs < 70 || res.PingMs > 130 {
		t.Errorf("ping = %v ms", res.PingMs)
	}
	if res.DownMbps < 50 {
		t.Errorf("down = %v Mbps, want > 50", res.DownMbps)
	}
	if res.UpMbps < 20 {
		t.Errorf("up = %v Mbps, want > 20", res.UpMbps)
	}
	if res.DownMbps < res.UpMbps {
		t.Errorf("down %v < up %v on an asymmetric link", res.DownMbps, res.UpMbps)
	}
	if res.FinishedAt <= res.StartedAt {
		t.Error("speedtest did not advance time")
	}
}

func TestSpeedtestStarlinkAsymmetry(t *testing.T) {
	sim, b := buildKind(t, ispnet.Starlink, 12)
	res, err := Speedtest(sim, b.Path, SpeedtestOptions{PhaseDuration: 4 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// Table 3's shape: downlink ~an order of magnitude above uplink.
	if res.DownMbps < 3*res.UpMbps {
		t.Errorf("down %v / up %v: Starlink asymmetry missing", res.DownMbps, res.UpMbps)
	}
	if res.UpMbps <= 0 {
		t.Error("no uplink throughput")
	}
}

func avg(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

func TestTracerouteMutedHopShowsStar(t *testing.T) {
	sim, b := buildKind(t, ispnet.Broadband, 21)
	// Silence a mid-path router, like a production box with ICMP disabled.
	b.Path.Nodes[3].Mute = true
	hops, err := Traceroute(sim, b.Path, TracerouteOptions{ProbesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	if hops[2].Addr != "*" {
		t.Errorf("muted hop rendered as %q, want *", hops[2].Addr)
	}
	if len(hops[2].RTTs) != 0 {
		t.Error("muted hop has RTT samples")
	}
	// Later hops still answer.
	if hops[3].Addr == "*" {
		t.Error("hop after the muted one should still reply")
	}
}

func TestRTTUnderLoad(t *testing.T) {
	sim, b := buildKind(t, ispnet.Starlink, 30)
	res, err := RTTUnderLoad(sim, b.Path, "cubic", 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.IdleRTT <= 0 || res.LoadedRTT <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// A saturating cubic download fills the bent pipe's queue: latency
	// under load must clearly exceed idle latency (bufferbloat).
	if res.Inflation < 1.3 {
		t.Errorf("loaded/idle RTT inflation = %.2f, want >= 1.3 on a deep-buffered link", res.Inflation)
	}
	if _, err := RTTUnderLoad(sim, b.Path, "cubic", 1); err == nil {
		t.Error("want error for too few probes")
	}
	if _, err := RTTUnderLoad(sim, b.Path, "nope", 5); err == nil {
		t.Error("want error for unknown algorithm")
	}
}
