// Package measure implements the network measurement tools the study ran on
// its volunteer Raspberry Pis and inside the browser extension: ping,
// traceroute, mtr-style repeated traceroute, iperf3-like TCP and UDP
// throughput tests, a Librespeed-style multi-stream speedtest, and the
// max-min queueing-delay estimator of Chan et al. that Table 2 is built on.
//
// Every tool runs synchronously on a netsim simulation: it injects packets,
// advances simulated time, and returns aggregated results. Tools must be run
// one after another on a given simulation (they advance its clock).
package measure

import (
	"fmt"
	"sync/atomic"
	"time"

	"starlinkview/internal/cc"
	"starlinkview/internal/netsim"
	"starlinkview/internal/stats"
)

// nextEphemeral hands out client ports so concurrently-registered tools on
// one path never collide. It is atomic so independent simulations may run
// concurrently (each simulation must still run its own tools sequentially).
var nextEphemeral atomic.Int64

func ephemeralPort() int {
	// Cycle through 42001..60000, like the ephemeral range of a real stack.
	return 42001 + int((nextEphemeral.Add(1)-1)%18000)
}

// PingResult summarises an ICMP echo run.
type PingResult struct {
	Sent     int
	Received int
	RTTs     []time.Duration
}

// MinRTT returns the smallest observed RTT, or 0 if none.
func (r PingResult) MinRTT() time.Duration {
	var m time.Duration
	for _, v := range r.RTTs {
		if m == 0 || v < m {
			m = v
		}
	}
	return m
}

// AvgRTT returns the mean observed RTT, or 0 if none.
func (r PingResult) AvgRTT() time.Duration {
	if len(r.RTTs) == 0 {
		return 0
	}
	var s time.Duration
	for _, v := range r.RTTs {
		s += v
	}
	return s / time.Duration(len(r.RTTs))
}

// Jitter returns the mean absolute difference between consecutive RTTs.
func (r PingResult) Jitter() time.Duration {
	if len(r.RTTs) < 2 {
		return 0
	}
	var s time.Duration
	for i := 1; i < len(r.RTTs); i++ {
		d := r.RTTs[i] - r.RTTs[i-1]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / time.Duration(len(r.RTTs)-1)
}

// Ping sends count ICMP echo probes at the interval and gathers replies.
func Ping(sim *netsim.Sim, path *netsim.Path, count int, interval time.Duration) (PingResult, error) {
	if count <= 0 {
		return PingResult{}, fmt.Errorf("measure: ping count must be positive, got %d", count)
	}
	if interval <= 0 {
		interval = time.Second
	}
	res := PingResult{Sent: count}
	port := ephemeralPort()
	sent := make(map[uint64]bool, count)

	client, server := path.Client(), path.Server()
	client.RegisterLocal(port, netsim.HandlerFunc(func(s *netsim.Sim, p *netsim.Packet) {
		if p.ICMP != netsim.ICMPEchoReply || !sent[p.ProbeID] {
			return
		}
		delete(sent, p.ProbeID)
		res.Received++
		res.RTTs = append(res.RTTs, s.Now()-p.SentAt)
	}))
	defer client.UnregisterLocal(port)

	for i := 0; i < count; i++ {
		i := i
		sim.Schedule(time.Duration(i)*interval, func() {
			id := sim.NextPacketID()
			sent[id] = true
			client.Handle(sim, &netsim.Packet{
				ID: id, Size: 64, TTL: 64,
				Src: client.Name, SrcPort: port,
				Dst: server.Name, DstPort: 0,
				ICMP: netsim.ICMPEcho, ProbeID: id,
				SentAt: sim.Now(),
			})
		})
	}
	sim.RunUntil(sim.Now() + time.Duration(count)*interval + 3*time.Second)
	return res, nil
}

// Hop is one traceroute hop's aggregated measurements.
type Hop struct {
	TTL  int
	Addr string // "*" when every probe timed out
	RTTs []time.Duration
}

// TracerouteOptions tunes a traceroute run.
type TracerouteOptions struct {
	// ProbesPerHop defaults to 3 (the traceroute default); the paper uses
	// up to 30 per hop for the max-min methodology and 60-byte packets.
	ProbesPerHop int
	ProbeSize    int
	MaxTTL       int
	// Interval between probes.
	Interval time.Duration
}

func (o *TracerouteOptions) defaults(path *netsim.Path) {
	if o.ProbesPerHop == 0 {
		o.ProbesPerHop = 3
	}
	if o.ProbeSize == 0 {
		o.ProbeSize = 60
	}
	if o.MaxTTL == 0 {
		o.MaxTTL = len(path.Nodes) // enough to reach the server
	}
	if o.Interval == 0 {
		o.Interval = 50 * time.Millisecond
	}
}

// Traceroute performs a TTL-sweeping probe of the path, like
// `traceroute -q N`. Probes use ICMP echo semantics so the destination
// answers the final hop.
func Traceroute(sim *netsim.Sim, path *netsim.Path, opts TracerouteOptions) ([]Hop, error) {
	opts.defaults(path)
	if opts.ProbesPerHop < 1 || opts.MaxTTL < 1 {
		return nil, fmt.Errorf("measure: invalid traceroute options %+v", opts)
	}

	type probe struct {
		ttl    int
		sentAt time.Duration
	}
	port := ephemeralPort()
	pending := make(map[uint64]probe)
	hops := make([]Hop, opts.MaxTTL)
	addrs := make([]string, opts.MaxTTL)

	client, server := path.Client(), path.Server()
	client.RegisterLocal(port, netsim.HandlerFunc(func(s *netsim.Sim, p *netsim.Packet) {
		pr, ok := pending[p.ProbeID]
		if !ok {
			return
		}
		if p.ICMP != netsim.ICMPTimeExceeded && p.ICMP != netsim.ICMPEchoReply {
			return
		}
		delete(pending, p.ProbeID)
		h := &hops[pr.ttl-1]
		h.RTTs = append(h.RTTs, s.Now()-pr.sentAt)
		addrs[pr.ttl-1] = p.ICMPFrom
	}))
	defer client.UnregisterLocal(port)

	var at time.Duration
	for ttl := 1; ttl <= opts.MaxTTL; ttl++ {
		hops[ttl-1].TTL = ttl
		for q := 0; q < opts.ProbesPerHop; q++ {
			ttl := ttl
			sim.Schedule(at, func() {
				id := sim.NextPacketID()
				pending[id] = probe{ttl: ttl, sentAt: sim.Now()}
				client.Handle(sim, &netsim.Packet{
					ID: id, Size: opts.ProbeSize, TTL: ttl,
					Src: client.Name, SrcPort: port,
					Dst: server.Name, DstPort: 0,
					ICMP: netsim.ICMPEcho, ProbeID: id,
					SentAt: sim.Now(),
				})
			})
			at += opts.Interval
		}
	}
	sim.RunUntil(sim.Now() + at + 5*time.Second)

	// Trim hops past the destination: once the server answered, later TTLs
	// repeat it.
	out := make([]Hop, 0, opts.MaxTTL)
	serverAddr := server.HopAddr
	for i := range hops {
		hops[i].Addr = addrs[i]
		if hops[i].Addr == "" {
			hops[i].Addr = "*"
		}
		out = append(out, hops[i])
		if hops[i].Addr == serverAddr {
			break
		}
	}
	return out, nil
}

// MTR runs `runs` traceroutes and merges the per-hop samples, like mtr's
// report mode.
func MTR(sim *netsim.Sim, path *netsim.Path, runs int, opts TracerouteOptions) ([]Hop, error) {
	if runs <= 0 {
		return nil, fmt.Errorf("measure: mtr needs at least one run")
	}
	var merged []Hop
	for r := 0; r < runs; r++ {
		hops, err := Traceroute(sim, path, opts)
		if err != nil {
			return nil, err
		}
		for i, h := range hops {
			if i >= len(merged) {
				merged = append(merged, Hop{TTL: h.TTL, Addr: h.Addr})
			}
			if merged[i].Addr == "*" && h.Addr != "*" {
				merged[i].Addr = h.Addr
			}
			merged[i].RTTs = append(merged[i].RTTs, h.RTTs...)
		}
	}
	return merged, nil
}

// QueueingDelay is a Table 2 row: min/median/max queueing-delay estimates
// in milliseconds for one path segment.
type QueueingDelay struct {
	MinMs, MedianMs, MaxMs float64
}

// MaxMinEstimate applies the paper's adaptation of the max-min methodology:
// it runs `runs` traceroute sweeps of `probes` 60-byte probes per hop; each
// run's queueing-delay sample for a hop is the spread (max-min) of that
// run's RTTs at the hop, which cancels propagation delay. The returned
// min/median/max summarise the per-run samples across runs.
func MaxMinEstimate(sim *netsim.Sim, path *netsim.Path, hopTTL int, runs, probes int) (QueueingDelay, error) {
	if hopTTL < 1 || hopTTL > len(path.Nodes)-1 {
		return QueueingDelay{}, fmt.Errorf("measure: hop TTL %d out of range", hopTTL)
	}
	var samples []float64
	for r := 0; r < runs; r++ {
		hops, err := Traceroute(sim, path, TracerouteOptions{
			ProbesPerHop: probes, ProbeSize: 60, MaxTTL: hopTTL, Interval: 100 * time.Millisecond,
		})
		if err != nil {
			return QueueingDelay{}, err
		}
		if len(hops) < hopTTL || len(hops[hopTTL-1].RTTs) < 2 {
			continue // not enough replies this run
		}
		rtts := hops[hopTTL-1].RTTs
		min, max := rtts[0], rtts[0]
		for _, v := range rtts[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		samples = append(samples, float64(max-min)/float64(time.Millisecond))
	}
	if len(samples) == 0 {
		return QueueingDelay{}, fmt.Errorf("measure: no usable traceroute runs for hop %d", hopTTL)
	}
	return QueueingDelay{
		MinMs:    stats.Min(samples),
		MedianMs: stats.Median(samples),
		MaxMs:    stats.Max(samples),
	}, nil
}

// MaxMinBoth runs the max-min methodology once and derives both Table 2
// columns — the first hop (the bent pipe) and the whole path — from the
// same traceroute sweeps, exactly as the paper's repeated runs did.
func MaxMinBoth(sim *netsim.Sim, path *netsim.Path, runs, probes int) (firstHop, whole QueueingDelay, err error) {
	lastTTL := len(path.Nodes) - 1
	var firstSamples, wholeSamples []float64
	spread := func(rtts []time.Duration) (float64, bool) {
		if len(rtts) < 2 {
			return 0, false
		}
		min, max := rtts[0], rtts[0]
		for _, v := range rtts[1:] {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return float64(max-min) / float64(time.Millisecond), true
	}
	for r := 0; r < runs; r++ {
		hops, err := Traceroute(sim, path, TracerouteOptions{
			ProbesPerHop: probes, ProbeSize: 60, MaxTTL: lastTTL, Interval: 100 * time.Millisecond,
		})
		if err != nil {
			return QueueingDelay{}, QueueingDelay{}, err
		}
		if len(hops) == 0 {
			continue
		}
		if v, ok := spread(hops[0].RTTs); ok {
			firstSamples = append(firstSamples, v)
		}
		if v, ok := spread(hops[len(hops)-1].RTTs); ok {
			wholeSamples = append(wholeSamples, v)
		}
	}
	if len(firstSamples) == 0 || len(wholeSamples) == 0 {
		return QueueingDelay{}, QueueingDelay{}, fmt.Errorf("measure: max-min sweeps produced no usable runs")
	}
	mk := func(s []float64) QueueingDelay {
		return QueueingDelay{MinMs: stats.Min(s), MedianMs: stats.Median(s), MaxMs: stats.Max(s)}
	}
	return mk(firstSamples), mk(wholeSamples), nil
}

// IperfResult summarises an iperf3-like run.
type IperfResult struct {
	Protocol      string
	Duration      time.Duration
	ThroughputBps float64
	SentPackets   int
	LostPackets   int
	Retransmits   int
	LossPct       float64
	MinRTT        time.Duration
}

// IperfTCP runs a single bulk TCP flow for the duration using the given
// congestion-control algorithm name and reports goodput.
func IperfTCP(sim *netsim.Sim, path *netsim.Path, algo string, duration time.Duration) (IperfResult, error) {
	if duration <= 0 {
		return IperfResult{}, fmt.Errorf("measure: iperf duration must be positive")
	}
	a, err := cc.New(algo)
	if err != nil {
		return IperfResult{}, err
	}
	srcPort, dstPort := ephemeralPort(), ephemeralPort()
	f, err := cc.NewFlow(sim, path, cc.FlowConfig{Algorithm: a, SrcPort: srcPort, DstPort: dstPort})
	if err != nil {
		return IperfResult{}, err
	}
	start := sim.Now()
	startBytes := f.Stats().DeliveredBytes
	f.Start()
	sim.RunUntil(start + duration)
	f.Stop()
	defer path.Client().UnregisterLocal(srcPort)
	defer path.Server().UnregisterLocal(dstPort)

	st := f.Stats()
	delivered := st.DeliveredBytes - startBytes
	res := IperfResult{
		Protocol:      "tcp/" + algo,
		Duration:      duration,
		ThroughputBps: float64(delivered*8) / duration.Seconds(),
		SentPackets:   st.SentPackets,
		Retransmits:   st.RetransPackets,
		MinRTT:        st.MinRTT,
	}
	if st.SentPackets > 0 {
		res.LossPct = 100 * float64(st.RetransPackets) / float64(st.SentPackets)
	}
	return res, nil
}

// IperfTCPReverse is IperfTCP in the download direction (server sends).
func IperfTCPReverse(sim *netsim.Sim, path *netsim.Path, algo string, duration time.Duration) (IperfResult, error) {
	if duration <= 0 {
		return IperfResult{}, fmt.Errorf("measure: iperf duration must be positive")
	}
	a, err := cc.New(algo)
	if err != nil {
		return IperfResult{}, err
	}
	srcPort, dstPort := ephemeralPort(), ephemeralPort()
	f, err := cc.NewFlow(sim, path, cc.FlowConfig{Algorithm: a, SrcPort: srcPort, DstPort: dstPort, Reverse: true})
	if err != nil {
		return IperfResult{}, err
	}
	start := sim.Now()
	f.Start()
	sim.RunUntil(start + duration)
	f.Stop()
	defer path.Server().UnregisterLocal(srcPort)
	defer path.Client().UnregisterLocal(dstPort)

	st := f.Stats()
	res := IperfResult{
		Protocol:      "tcp/" + algo + "/reverse",
		Duration:      duration,
		ThroughputBps: float64(st.DeliveredBytes*8) / duration.Seconds(),
		SentPackets:   st.SentPackets,
		Retransmits:   st.RetransPackets,
		MinRTT:        st.MinRTT,
	}
	if st.SentPackets > 0 {
		res.LossPct = 100 * float64(st.RetransPackets) / float64(st.SentPackets)
	}
	return res, nil
}

// IperfUDP blasts paced UDP at rateBps for the duration and measures the
// loss rate at the receiver, like `iperf3 -u -b <rate>`. With reverse=true
// the server transmits (downlink test).
func IperfUDP(sim *netsim.Sim, path *netsim.Path, rateBps float64, duration time.Duration, reverse bool) (IperfResult, error) {
	if rateBps <= 0 || duration <= 0 {
		return IperfResult{}, fmt.Errorf("measure: invalid UDP iperf parameters")
	}
	const pktSize = 1250 // 10 kbit packets make the arithmetic clean
	snd, rcv := path.Client(), path.Server()
	if reverse {
		snd, rcv = rcv, snd
	}
	port := ephemeralPort()
	received := 0
	var rcvBytes int64
	rcv.RegisterLocal(port, netsim.HandlerFunc(func(s *netsim.Sim, p *netsim.Packet) {
		received++
		rcvBytes += int64(p.Size)
	}))
	defer rcv.UnregisterLocal(port)

	gap := time.Duration(float64(pktSize*8) / rateBps * float64(time.Second))
	n := int(duration / gap)
	start := sim.Now()
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(time.Duration(i)*gap, func() {
			snd.Handle(sim, &netsim.Packet{
				ID: sim.NextPacketID(), Size: pktSize, TTL: 64,
				Src: snd.Name, Dst: rcv.Name, DstPort: port,
				SentAt: sim.Now(),
			})
		})
	}
	sim.RunUntil(start + duration + 2*time.Second)

	res := IperfResult{
		Protocol:      "udp",
		Duration:      duration,
		ThroughputBps: float64(rcvBytes*8) / duration.Seconds(),
		SentPackets:   n,
		LostPackets:   n - received,
	}
	if n > 0 {
		res.LossPct = 100 * float64(n-received) / float64(n)
	}
	return res, nil
}

// SpeedtestResult mirrors what the browser extension's embedded Librespeed
// reports: latency, jitter, and multi-stream down/up throughput.
type SpeedtestResult struct {
	PingMs     float64
	JitterMs   float64
	DownMbps   float64
	UpMbps     float64
	StartedAt  time.Duration
	FinishedAt time.Duration
}

// SpeedtestOptions tunes a speedtest run.
type SpeedtestOptions struct {
	Streams       int           // parallel TCP streams per direction (default 4)
	PhaseDuration time.Duration // per-direction measuring time (default 8s)
	Algorithm     string        // congestion control (default cubic)
}

func (o *SpeedtestOptions) defaults() {
	if o.Streams == 0 {
		o.Streams = 4
	}
	if o.PhaseDuration == 0 {
		o.PhaseDuration = 8 * time.Second
	}
	if o.Algorithm == "" {
		o.Algorithm = "cubic"
	}
}

// Speedtest runs ping, download (reverse) and upload (forward) phases.
func Speedtest(sim *netsim.Sim, path *netsim.Path, opts SpeedtestOptions) (SpeedtestResult, error) {
	opts.defaults()
	res := SpeedtestResult{StartedAt: sim.Now()}

	ping, err := Ping(sim, path, 8, 200*time.Millisecond)
	if err != nil {
		return res, err
	}
	res.PingMs = float64(ping.AvgRTT()) / float64(time.Millisecond)
	res.JitterMs = float64(ping.Jitter()) / float64(time.Millisecond)

	run := func(reverse bool) (float64, error) {
		var flows []*cc.Flow
		var ports [][2]int
		start := sim.Now()
		for i := 0; i < opts.Streams; i++ {
			a, err := cc.New(opts.Algorithm)
			if err != nil {
				return 0, err
			}
			sp, dp := ephemeralPort(), ephemeralPort()
			f, err := cc.NewFlow(sim, path, cc.FlowConfig{
				Algorithm: a, SrcPort: sp, DstPort: dp, Reverse: reverse,
			})
			if err != nil {
				return 0, err
			}
			flows = append(flows, f)
			ports = append(ports, [2]int{sp, dp})
			f.Start()
		}
		// Like Librespeed, ignore the ramp: a grace period runs before the
		// measured window starts.
		grace := opts.PhaseDuration * 3 / 10
		sim.RunUntil(start + grace)
		var atGrace int64
		for _, f := range flows {
			atGrace += f.Stats().DeliveredBytes
		}
		sim.RunUntil(start + grace + opts.PhaseDuration)
		var total int64
		for _, f := range flows {
			f.Stop()
			total += f.Stats().DeliveredBytes
		}
		total -= atGrace
		snd, rcv := path.Client(), path.Server()
		if reverse {
			snd, rcv = rcv, snd
		}
		for _, pp := range ports {
			snd.UnregisterLocal(pp[0])
			rcv.UnregisterLocal(pp[1])
		}
		// Let in-flight traffic drain before the next phase.
		sim.RunUntil(sim.Now() + time.Second)
		return float64(total*8) / opts.PhaseDuration.Seconds(), nil
	}

	down, err := run(true)
	if err != nil {
		return res, err
	}
	up, err := run(false)
	if err != nil {
		return res, err
	}
	res.DownMbps = down / 1e6
	res.UpMbps = up / 1e6
	res.FinishedAt = sim.Now()
	return res, nil
}

// LoadedRTTResult reports latency under load — the bufferbloat measurement
// that complements Table 2's queueing-delay estimates: the access link's
// deep queue fills under a bulk transfer and pings pay the standing delay.
type LoadedRTTResult struct {
	IdleRTT   time.Duration // median RTT with no competing traffic
	LoadedRTT time.Duration // median RTT during a saturating download
	// Inflation is LoadedRTT / IdleRTT.
	Inflation float64
}

// RTTUnderLoad measures the idle median RTT, then starts a bulk download
// and measures again while it runs.
func RTTUnderLoad(sim *netsim.Sim, path *netsim.Path, algo string, probes int) (LoadedRTTResult, error) {
	if probes < 3 {
		return LoadedRTTResult{}, fmt.Errorf("measure: need >= 3 probes, got %d", probes)
	}
	medianRTT := func(r PingResult) time.Duration {
		if len(r.RTTs) == 0 {
			return 0
		}
		vals := make([]float64, len(r.RTTs))
		for i, d := range r.RTTs {
			vals[i] = float64(d)
		}
		return time.Duration(stats.Median(vals))
	}

	idle, err := Ping(sim, path, probes, 200*time.Millisecond)
	if err != nil {
		return LoadedRTTResult{}, err
	}
	if idle.Received == 0 {
		return LoadedRTTResult{}, fmt.Errorf("measure: no idle ping replies")
	}

	a, err := cc.New(algo)
	if err != nil {
		return LoadedRTTResult{}, err
	}
	sp, dp := ephemeralPort(), ephemeralPort()
	f, err := cc.NewFlow(sim, path, cc.FlowConfig{Algorithm: a, SrcPort: sp, DstPort: dp, Reverse: true})
	if err != nil {
		return LoadedRTTResult{}, err
	}
	f.Start()
	// Let the queue build before probing.
	sim.RunUntil(sim.Now() + 2*time.Second)
	loaded, err := Ping(sim, path, probes, 200*time.Millisecond)
	f.Stop()
	path.Server().UnregisterLocal(sp)
	path.Client().UnregisterLocal(dp)
	if err != nil {
		return LoadedRTTResult{}, err
	}
	if loaded.Received == 0 {
		return LoadedRTTResult{}, fmt.Errorf("measure: no loaded ping replies")
	}

	res := LoadedRTTResult{IdleRTT: medianRTT(idle), LoadedRTT: medianRTT(loaded)}
	if res.IdleRTT > 0 {
		res.Inflation = float64(res.LoadedRTT) / float64(res.IdleRTT)
	}
	return res, nil
}
