package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MembershipConfig parameterises a Membership.
type MembershipConfig struct {
	// Self is this instance's advertise address (host:port) — the address
	// peers reach it on and the identity it occupies on the ring.
	Self string
	// Peers are the other instances' advertise addresses. Self may appear
	// in the list; it is deduped out. The member set is static — the ring
	// only ever re-partitions over liveness changes within it.
	Peers []string
	// VNodes per member (DefaultVNodes when <= 0). Every instance and
	// client must agree on it.
	VNodes int
	// ProbeInterval is the liveness-probe period. Zero disables probing:
	// membership is then static, every peer permanently presumed alive —
	// the mode single-binary tests and fixed-topology deployments use.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /healthz round-trip (default 2s).
	ProbeTimeout time.Duration
	// HTTPClient overrides the probe transport.
	HTTPClient *http.Client
	// OnRebuild, if set, observes every ring rebuild (including the initial
	// build) — the metrics hook.
	OnRebuild func(r *Ring, live, dead int)
}

// MemberState is one member's health as last observed.
type MemberState struct {
	Addr      string    `json:"addr"`
	Self      bool      `json:"self,omitempty"`
	Alive     bool      `json:"alive"`
	LastErr   string    `json:"last_err,omitempty"`
	LastProbe time.Time `json:"last_probe,omitempty"`
}

// Membership tracks which members of a static peer list are alive and
// maintains the ring over the live ones. Liveness comes from each peer's
// /healthz — the same endpoint that gates a collector out of rotation when
// its WAL writer is poisoned, so an instance that can no longer make
// records durable also stops owning ring ranges.
type Membership struct {
	cfg     MembershipConfig
	members []string // sorted: self + peers, deduped
	client  *http.Client

	mu    sync.RWMutex
	ring  *Ring
	state map[string]*MemberState

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMembership builds the membership over self + peers with everyone
// presumed alive, and starts the probe loop when ProbeInterval > 0. Use
// Probe for a synchronous round (tests, startup barriers).
func NewMembership(cfg MembershipConfig) (*Membership, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: membership needs a Self address")
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	set := map[string]bool{cfg.Self: true}
	for _, p := range cfg.Peers {
		if p != "" {
			set[p] = true
		}
	}
	members := make([]string, 0, len(set))
	for m := range set {
		members = append(members, m)
	}
	sort.Strings(members)
	m := &Membership{
		cfg:     cfg,
		members: members,
		client:  cfg.HTTPClient,
		state:   make(map[string]*MemberState, len(members)),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if m.client == nil {
		m.client = &http.Client{}
	}
	for _, addr := range members {
		m.state[addr] = &MemberState{Addr: addr, Self: addr == cfg.Self, Alive: true}
	}
	m.rebuildLocked()
	if cfg.ProbeInterval > 0 {
		go m.probeLoop()
	} else {
		close(m.done)
	}
	return m, nil
}

// Ring returns the current ring view.
func (m *Membership) Ring() *Ring {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.ring
}

// Self returns this instance's advertise address.
func (m *Membership) Self() string { return m.cfg.Self }

// Members returns the full static member set, sorted.
func (m *Membership) Members() []string {
	return append([]string(nil), m.members...)
}

// Live returns the currently-live members, sorted.
func (m *Membership) Live() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for _, addr := range m.members {
		if m.state[addr].Alive {
			out = append(out, addr)
		}
	}
	return out
}

// States returns every member's health, sorted by address.
func (m *Membership) States() []MemberState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]MemberState, 0, len(m.members))
	for _, addr := range m.members {
		out = append(out, *m.state[addr])
	}
	return out
}

func (m *Membership) probeLoop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			m.Probe()
		case <-m.stop:
			return
		}
	}
}

// Probe runs one synchronous liveness round: every peer's /healthz in
// parallel, then a deterministic ring rebuild if the live set changed.
// Self is never probed — an instance that can run this loop is alive by
// definition, and must keep owning its ranges so its local ring view and
// its peers' converge.
func (m *Membership) Probe() {
	type result struct {
		addr string
		err  error
	}
	peers := make([]string, 0, len(m.members)-1)
	for _, addr := range m.members {
		if addr != m.cfg.Self {
			peers = append(peers, addr)
		}
	}
	results := make(chan result, len(peers))
	for _, addr := range peers {
		go func(addr string) {
			results <- result{addr, m.probeOne(addr)}
		}(addr)
	}
	now := time.Now()
	changed := false
	m.mu.Lock()
	for range peers {
		r := <-results
		st := m.state[r.addr]
		alive := r.err == nil
		if st.Alive != alive {
			changed = true
		}
		st.Alive = alive
		st.LastProbe = now
		st.LastErr = ""
		if r.err != nil {
			st.LastErr = r.err.Error()
		}
	}
	if changed {
		m.rebuildLocked()
	}
	m.mu.Unlock()
}

func (m *Membership) probeOne(addr string) error {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/healthz", nil)
	if err != nil {
		return err
	}
	ctx, cancel := timeoutContext(m.cfg.ProbeTimeout)
	defer cancel()
	resp, err := m.client.Do(req.WithContext(ctx))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	return nil
}

// rebuildLocked rebuilds the ring from the sorted live members. Callers
// hold mu. The build is deterministic: every instance observing the same
// live set computes the same ring (compare Ring.Version across /cluster/ring
// to check convergence).
func (m *Membership) rebuildLocked() {
	var live []string
	dead := 0
	for _, addr := range m.members {
		if m.state[addr].Alive {
			live = append(live, addr)
		} else {
			dead++
		}
	}
	m.ring = NewRing(live, m.cfg.VNodes)
	if m.cfg.OnRebuild != nil {
		m.cfg.OnRebuild(m.ring, len(live), dead)
	}
}

// Close stops the probe loop.
func (m *Membership) Close() {
	m.once.Do(func() { close(m.stop) })
	<-m.done
}

func timeoutContext(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}
