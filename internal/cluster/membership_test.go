package cluster

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMembershipStatic(t *testing.T) {
	m, err := NewMembership(MembershipConfig{
		Self:  "a:1",
		Peers: []string{"b:1", "c:1", "a:1"}, // self in the list is fine
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if got := m.Members(); len(got) != 3 {
		t.Fatalf("members = %v, want 3 deduped", got)
	}
	if got := m.Live(); len(got) != 3 {
		t.Fatalf("static membership live = %v, want all", got)
	}
	ring := m.Ring()
	if len(ring.Members()) != 3 {
		t.Fatalf("ring built over %v, want all members", ring.Members())
	}
}

func TestMembershipProbeRebuild(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok\n"))
	}))
	defer peer.Close()
	peerAddr := strings.TrimPrefix(peer.URL, "http://")

	rebuilds := 0
	m, err := NewMembership(MembershipConfig{
		Self:         "self:1",
		Peers:        []string{peerAddr},
		ProbeTimeout: time.Second,
		OnRebuild:    func(_ *Ring, live, dead int) { rebuilds++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v0 := m.Ring().Version()
	if rebuilds != 1 {
		t.Fatalf("initial build should fire OnRebuild once, got %d", rebuilds)
	}

	// Healthy probe: no liveness change, no rebuild.
	m.Probe()
	if m.Ring().Version() != v0 || rebuilds != 1 {
		t.Fatalf("healthy probe rebuilt the ring (rebuilds=%d)", rebuilds)
	}

	// Peer dies: the ring shrinks to self, deterministically.
	healthy.Store(false)
	m.Probe()
	if got := m.Live(); len(got) != 1 || got[0] != "self:1" {
		t.Fatalf("live after death = %v, want [self:1]", got)
	}
	if m.Ring().Version() == v0 {
		t.Fatal("ring version unchanged after member death")
	}
	if want := NewRing([]string{"self:1"}, 0).Version(); m.Ring().Version() != want {
		t.Fatal("rebuilt ring is not the deterministic ring over the live set")
	}
	var deadState MemberState
	for _, st := range m.States() {
		if st.Addr == peerAddr {
			deadState = st
		}
	}
	if deadState.Alive || deadState.LastErr == "" {
		t.Fatalf("dead peer state = %+v, want dead with an error", deadState)
	}

	// Peer recovers: ring returns to the original version — rebuilds are a
	// pure function of the live set.
	healthy.Store(true)
	m.Probe()
	if m.Ring().Version() != v0 {
		t.Fatal("ring did not converge back after the peer recovered")
	}
	if got := len(m.Live()); got != 2 {
		t.Fatalf("live after recovery = %d, want 2", got)
	}
}
