package cluster

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"starlinkview/internal/collector"
	"starlinkview/internal/dataset"
	"starlinkview/internal/wal"
)

// TestCompactColdSegments drives a WAL through several rotations with a
// live aggregator, compacts beside it, and checks the outputs are exactly
// the sealed segments' records in release order — then that a second pass
// is a no-op and a second output directory is byte-identical.
func TestCompactColdSegments(t *testing.T) {
	walDir := t.TempDir()
	outDir := filepath.Join(t.TempDir(), "out")

	agg, err := collector.OpenAggregator(collector.Config{
		Shards: 2,
		WAL: collector.WALConfig{
			Dir:          walDir,
			SegmentBytes: 8 << 10, // force several rotations
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	records := testRecords(600)
	samples := testSamples(120)
	for _, r := range records {
		if !agg.OfferExtension(r) {
			t.Fatal("record rejected")
		}
	}
	for _, s := range samples {
		if !agg.OfferNodeSample(s) {
			t.Fatal("sample rejected")
		}
	}
	if err := agg.SyncWAL(); err != nil {
		t.Fatal(err)
	}

	segs, err := wal.ListSegments(nil, walDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("only %d segments, need rotations to test compaction", len(segs))
	}

	// Count what the sealed segments actually hold, straight off the log.
	wantExt, wantNodes := 0, 0
	for _, seg := range segs[:len(segs)-1] {
		f, err := os.Open(filepath.Join(walDir, seg.Name))
		if err != nil {
			t.Fatal(err)
		}
		_, err = wal.ReadSegment(f, func(r wal.Rec) error {
			switch r.Kind {
			case collector.WALKindExtension:
				wantExt++
			case collector.WALKindNode:
				wantNodes++
			}
			return nil
		})
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
	}

	// Compact while the aggregator is still live: sealed segments are
	// immutable, so this must be safe and complete.
	res, err := CompactColdSegments(CompactConfig{WALDir: walDir, OutDir: outDir})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdSegments != len(segs)-1 {
		t.Errorf("cold segments = %d, want %d", res.ColdSegments, len(segs)-1)
	}
	if res.ExtensionRecords != wantExt || res.NodeSamples != wantNodes {
		t.Errorf("compacted %d records / %d samples, want %d / %d",
			res.ExtensionRecords, res.NodeSamples, wantExt, wantNodes)
	}

	// Outputs must parse as release datasets and be sorted in release order.
	gotExt, gotNodes := 0, 0
	for _, out := range res.Outputs {
		if strings.HasSuffix(out, ".nodes.json") {
			f, err := os.Open(out)
			if err != nil {
				t.Fatal(err)
			}
			ss, err := dataset.ReadNodeJSON(f)
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", out, err)
			}
			gotNodes += len(ss)
			continue
		}
		f, err := os.Open(out)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := dataset.ReadExtensionCSV(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", out, err)
		}
		gotExt += len(rs)
		if !sort.SliceIsSorted(rs, func(i, j int) bool {
			if rs[i].City != rs[j].City {
				return rs[i].City < rs[j].City
			}
			if rs[i].ISP != rs[j].ISP {
				return rs[i].ISP < rs[j].ISP
			}
			return rs[i].At.Before(rs[j].At)
		}) {
			t.Errorf("%s is not in release order", out)
		}
	}
	if gotExt != wantExt || gotNodes != wantNodes {
		t.Errorf("outputs hold %d records / %d samples, want %d / %d",
			gotExt, gotNodes, wantExt, wantNodes)
	}

	// Idempotency: a second pass writes nothing.
	res2, err := CompactColdSegments(CompactConfig{WALDir: walDir, OutDir: outDir})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Compacted != 0 || len(res2.Outputs) != 0 {
		t.Errorf("second pass rewrote %d segments (%v)", res2.Compacted, res2.Outputs)
	}

	// Determinism: compacting the same log into a fresh directory yields
	// byte-identical datasets.
	outDir2 := filepath.Join(t.TempDir(), "out2")
	res3, err := CompactColdSegments(CompactConfig{WALDir: walDir, OutDir: outDir2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res3.Outputs) != len(res.Outputs) {
		t.Fatalf("fresh pass wrote %d outputs, first wrote %d", len(res3.Outputs), len(res.Outputs))
	}
	for i, out := range res.Outputs {
		a, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(res3.Outputs[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s and %s differ", out, res3.Outputs[i])
		}
	}

	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
}
