package cluster

import (
	"fmt"
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"c:1", "a:1", "b:1"}, 64)
	b := NewRing([]string{"b:1", "a:1", "c:1", "a:1"}, 64) // permuted + dup
	if a.Version() != b.Version() {
		t.Fatalf("versions differ across permutations: %d vs %d", a.Version(), b.Version())
	}
	for i := 0; i < 1000; i++ {
		k1, k2 := fmt.Sprintf("city%d", i), fmt.Sprintf("isp%d", i%7)
		if a.Owner(k1, k2) != b.Owner(k1, k2) {
			t.Fatalf("owner(%s,%s) differs across identical rings", k1, k2)
		}
	}
	if v := NewRing([]string{"a:1", "b:1"}, 64).Version(); v == a.Version() {
		t.Error("version unchanged after removing a member")
	}
	if v := NewRing([]string{"c:1", "a:1", "b:1"}, 32).Version(); v == a.Version() {
		t.Error("version unchanged after changing vnodes")
	}
}

func TestRingBalanceAndStability(t *testing.T) {
	members := []string{"h0:9", "h1:9", "h2:9"}
	r := NewRing(members, 0) // DefaultVNodes
	counts := map[string]int{}
	const keys = 12000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("city%d", i), "starlink")]++
	}
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.20 || share > 0.47 {
			t.Errorf("member %s owns %.1f%% of keys, expected a rough third", m, share*100)
		}
	}

	// Consistency: removing one member must not move keys between the
	// survivors — only the dead member's keys relocate.
	shrunk := NewRing(members[:2], 0)
	moved := 0
	for i := 0; i < keys; i++ {
		k1 := fmt.Sprintf("city%d", i)
		before, after := r.Owner(k1, "starlink"), shrunk.Owner(k1, "starlink")
		if before != "h2:9" && before != after {
			t.Fatalf("key %s moved from surviving %s to %s", k1, before, after)
		}
		if before == "h2:9" {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no keys were owned by the removed member")
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Owner("x", "y"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	if len(r.Members()) != 0 {
		t.Fatalf("empty ring has members %v", r.Members())
	}
}
