package cluster

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/core"
	"starlinkview/internal/extension"
)

// campaignE2EConfig is a downscaled chunked campaign: small enough for CI,
// still crossing chunk boundaries, multiple cities, and both ISP classes.
func campaignE2EConfig(workers int) core.CampaignConfig {
	return core.CampaignConfig{
		Seed:          7,
		Epoch:         time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC),
		Users:         500,
		Cities:        5,
		Chunks:        3,
		ChunkHours:    6,
		StarlinkShare: 0.5,
		PagesPerDay:   8,
		Domains:       300,
		Workers:       workers,
	}
}

// campaignCluster is a 3-instance WAL-backed cluster plus a batch-wire ring
// client, with enough handles to kill and restart instances mid-campaign.
type campaignCluster struct {
	t       *testing.T
	walDirs []string
	srvs    []*collector.Server
	nodes   []*Node
	addrs   []string
	http    *http.Client
	client  *Client
}

func startCampaignCluster(t *testing.T) *campaignCluster {
	t.Helper()
	cc := &campaignCluster{t: t, http: &http.Client{}}
	cc.walDirs = make([]string, 3)
	cc.srvs = make([]*collector.Server, 3)
	cc.addrs = make([]string, 3)
	for i := range cc.srvs {
		cc.walDirs[i] = t.TempDir()
		cc.srvs[i] = startInstance(t, cc.walDirs[i], "127.0.0.1:0")
		cc.addrs[i] = cc.srvs[i].Addr()
	}
	cc.nodes = make([]*Node, 3)
	for i := range cc.srvs {
		cc.nodes[i] = newTestNode(t, cc.srvs[i], cc.addrs[i], cc.addrs)
	}
	client, err := NewClient(ClientConfig{
		Targets:    cc.addrs,
		Route:      RouteRing,
		Wire:       collector.WireBatch,
		BatchSize:  256,
		HTTPClient: cc.http,
	})
	if err != nil {
		t.Fatal(err)
	}
	cc.client = client
	t.Cleanup(func() {
		for i := range cc.srvs {
			cc.nodes[i].Close()
			_ = cc.srvs[i].Shutdown(context.Background())
		}
	})
	return cc
}

// sink adapts the cluster client to a campaign chunk sink: the chunk only
// commits once every record is flushed and acknowledged.
func (cc *campaignCluster) sink(recs []extension.Record) error {
	for _, r := range recs {
		if err := cc.client.AddRecord(r); err != nil {
			return err
		}
	}
	return cc.client.Flush()
}

// restartInstance shuts instance i down, deletes its WAL checkpoint so the
// restart replays every logged batch frame, and brings it back on the same
// address.
func (cc *campaignCluster) restartInstance(i int) {
	cc.t.Helper()
	cc.nodes[i].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := cc.srvs[i].Shutdown(ctx); err != nil {
		cc.t.Fatal(err)
	}
	cancel()
	if err := os.Remove(filepath.Join(cc.walDirs[i], "checkpoint")); err != nil {
		cc.t.Fatalf("delete checkpoint: %v", err)
	}
	cc.http.CloseIdleConnections()
	cc.srvs[i] = startInstance(cc.t, cc.walDirs[i], cc.addrs[i])
	cc.nodes[i] = newTestNode(cc.t, cc.srvs[i], cc.addrs[i], cc.addrs)
	rec := cc.srvs[i].Aggregator().WALRecovery()
	if rec.SkippedCorrupt != 0 {
		cc.t.Fatalf("restart skipped %d corrupt frames", rec.SkippedCorrupt)
	}
}

// TestCampaignKillResumeClusterE2E is the streamed-campaign acceptance
// test: a chunked campaign over the batch wire into a 3-instance cluster,
// interrupted three ways — killed between chunks and rebuilt from its
// checkpoint file under a different worker count, aborted mid-chunk before
// anything was delivered, and with a collector instance crash-restarted
// (full WAL batch-frame replay) between chunks — must leave the merged
// cluster snapshot byte-identical to an uninterrupted run.
func TestCampaignKillResumeClusterE2E(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// Reference: uninterrupted campaign into a fresh cluster.
			ref := startCampaignCluster(t)
			refCamp, err := core.NewCampaign(campaignE2EConfig(workers))
			if err != nil {
				t.Fatal(err)
			}
			var total uint64
			for !refCamp.Done() {
				if err := refCamp.RunChunk(func(recs []extension.Record) error {
					total += uint64(len(recs))
					return ref.sink(recs)
				}); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.client.Close(); err != nil {
				t.Fatal(err)
			}
			if total == 0 {
				t.Fatal("campaign produced no records")
			}
			refBytes, _ := mergedComparable(t, ref.addrs[0], total)

			// Interrupted: same campaign, fresh cluster, every supported
			// failure injected.
			cc := startCampaignCluster(t)
			ckPath := filepath.Join(t.TempDir(), "campaign.ckpt")
			camp, err := core.NewCampaign(campaignE2EConfig(workers))
			if err != nil {
				t.Fatal(err)
			}

			// Chunk 0 delivered, checkpoint written.
			if err := camp.RunChunk(cc.sink); err != nil {
				t.Fatal(err)
			}
			if err := camp.SaveCheckpoint(ckPath); err != nil {
				t.Fatal(err)
			}

			// Failure 1 — killed between chunks: abandon the campaign value
			// and rebuild from the checkpoint file, resuming with a
			// different worker count (the stream must not care).
			resumedCfg := campaignE2EConfig(5 - workers)
			camp, err = core.NewCampaign(resumedCfg)
			if err != nil {
				t.Fatal(err)
			}
			ck, err := core.LoadCampaignCheckpoint(ckPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := camp.Restore(ck); err != nil {
				t.Fatal(err)
			}
			if camp.NextChunk() != 1 {
				t.Fatalf("resumed at chunk %d, want 1", camp.NextChunk())
			}

			// Failure 2 — killed mid-chunk, before anything reached the
			// wire: RunChunk's sink never gets to deliver. The campaign
			// must stay at the old boundary and the re-run must be what the
			// uninterrupted run produced.
			abort := fmt.Errorf("killed mid-chunk")
			if err := camp.RunChunk(func([]extension.Record) error { return abort }); err != abort {
				t.Fatalf("aborted RunChunk returned %v", err)
			}
			if camp.NextChunk() != 1 {
				t.Fatalf("mid-chunk abort advanced cursor to %d", camp.NextChunk())
			}

			// Chunk 1 for real.
			if err := camp.RunChunk(cc.sink); err != nil {
				t.Fatal(err)
			}
			if err := camp.SaveCheckpoint(ckPath); err != nil {
				t.Fatal(err)
			}

			// Failure 3 — collector instance crash between chunks: full
			// WAL replay from logged batch frames, back on the same
			// address.
			cc.restartInstance(1)

			// Remaining chunks.
			for !camp.Done() {
				if err := camp.RunChunk(cc.sink); err != nil {
					t.Fatal(err)
				}
				if err := camp.SaveCheckpoint(ckPath); err != nil {
					t.Fatal(err)
				}
			}
			if err := cc.client.Close(); err != nil {
				t.Fatal(err)
			}
			if st := cc.client.Stats(); st.Forwarded != 0 {
				t.Errorf("aligned ring routing forwarded %d records", st.Forwarded)
			}

			gotBytes, wire := mergedComparable(t, cc.addrs[0], total)
			if len(wire.Peers) != 3 {
				t.Fatalf("merged %d peers, want 3", len(wire.Peers))
			}
			if !bytes.Equal(gotBytes, refBytes) {
				t.Errorf("workers=%d: interrupted campaign's merged snapshot differs from uninterrupted run\ninterrupted: %s\nreference:   %s",
					workers, gotBytes, refBytes)
			}
		})
	}
}
