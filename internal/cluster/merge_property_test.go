package cluster

import (
	"math"
	"testing"

	"starlinkview/internal/collector"
)

// TestMergePartitionProperty is the merge path's core invariant: for any K,
// splitting the record stream across K aggregators and merging their
// exported states equals one aggregator that saw everything. Counts, domain
// sets, quantiles and city tables are exact (sketch merges add bucket
// counts); means may differ only by float summation order, because
// round-robin partitioning splits groups across instances.
func TestMergePartitionProperty(t *testing.T) {
	records := testRecords(4000)
	samples := testSamples(900)
	ref := ingestAll(t, 0, 1, records, samples)

	for _, k := range []int{1, 2, 3, 5} {
		states := make([]collector.MergeState, k)
		for p := 0; p < k; p++ {
			snap := ingestAll(t, p, k, records, samples)
			var err error
			if states[p], err = snap.ExportState(); err != nil {
				t.Fatal(err)
			}
		}
		merged, err := collector.MergeStates(states...)
		if err != nil {
			t.Fatalf("K=%d: merge: %v", k, err)
		}
		assertSnapshotsEquivalent(t, k, ref, merged)
	}
}

// ingestAll feeds partition p of k (every k-th item starting at p; k == 1
// means the whole stream) into a fresh aggregator and returns its drained
// snapshot.
func ingestAll(t *testing.T, p, k int, records []record, samples []sample) *collector.Snapshot {
	t.Helper()
	agg, err := collector.OpenAggregator(collector.Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range records {
		if i%k == p%k {
			if !agg.OfferExtension(r) {
				t.Fatalf("record %d rejected", i)
			}
		}
	}
	for i, s := range samples {
		if i%k == p%k {
			if !agg.OfferNodeSample(s) {
				t.Fatalf("sample %d rejected", i)
			}
		}
	}
	if err := agg.Close(); err != nil {
		t.Fatal(err)
	}
	return agg.Snapshot()
}

// approx allows only float-summation-order error.
func approx(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func assertSnapshotsEquivalent(t *testing.T, k int, ref, got *collector.Snapshot) {
	t.Helper()
	if got.Accepted != ref.Accepted || got.Dropped != ref.Dropped || got.Processed != ref.Processed {
		t.Errorf("K=%d: totals %d/%d/%d, want %d/%d/%d", k,
			got.Accepted, got.Dropped, got.Processed, ref.Accepted, ref.Dropped, ref.Processed)
	}
	if len(got.Groups) != len(ref.Groups) {
		t.Fatalf("K=%d: %d groups, want %d", k, len(got.Groups), len(ref.Groups))
	}
	for i, rg := range ref.Groups {
		gg := got.Groups[i]
		if gg.City != rg.City || gg.ISP != rg.ISP {
			t.Fatalf("K=%d: group %d is %s/%s, want %s/%s", k, i, gg.City, gg.ISP, rg.City, rg.ISP)
		}
		// Exact: counts, domain cardinality, and quantiles (merging adds
		// sketch bucket counts, it never re-buckets).
		if gg.Count != rg.Count || gg.Domains != rg.Domains {
			t.Errorf("K=%d: group %s/%s count/domains %d/%d, want %d/%d",
				k, rg.City, rg.ISP, gg.Count, gg.Domains, rg.Count, rg.Domains)
		}
		if gg.P50PTTMs != rg.P50PTTMs || gg.P95PTTMs != rg.P95PTTMs {
			t.Errorf("K=%d: group %s/%s quantiles differ: p50 %v vs %v, p95 %v vs %v",
				k, rg.City, rg.ISP, gg.P50PTTMs, rg.P50PTTMs, gg.P95PTTMs, rg.P95PTTMs)
		}
		if !approx(gg.MeanPTTMs, rg.MeanPTTMs) {
			t.Errorf("K=%d: group %s/%s mean %v, want %v", k, rg.City, rg.ISP, gg.MeanPTTMs, rg.MeanPTTMs)
		}
	}
	if len(got.Nodes) != len(ref.Nodes) {
		t.Fatalf("K=%d: %d node groups, want %d", k, len(got.Nodes), len(ref.Nodes))
	}
	for i, rn := range ref.Nodes {
		gn := got.Nodes[i]
		if gn.Node != rn.Node || gn.Kind != rn.Kind || gn.Count != rn.Count {
			t.Fatalf("K=%d: node group %d is %s/%s/%d, want %s/%s/%d",
				k, i, gn.Node, gn.Kind, gn.Count, rn.Node, rn.Kind, rn.Count)
		}
		if gn.P50Down != rn.P50Down || gn.P95Down != rn.P95Down {
			t.Errorf("K=%d: node %s/%s down quantiles differ", k, rn.Node, rn.Kind)
		}
		if !approx(gn.MeanDown, rn.MeanDown) || !approx(gn.MeanUp, rn.MeanUp) ||
			!approx(gn.MeanPingMs, rn.MeanPingMs) || !approx(gn.MeanLossPct, rn.MeanLossPct) {
			t.Errorf("K=%d: node %s/%s means differ beyond summation order", k, rn.Node, rn.Kind)
		}
	}
	refTable := ref.CityTableJSON()
	gotTable := got.CityTableJSON()
	if len(gotTable) != len(refTable) {
		t.Fatalf("K=%d: city table %d rows, want %d", k, len(gotTable), len(refTable))
	}
	for i, rr := range refTable {
		if gotTable[i] != rr { // struct equality: medians must be exact
			t.Errorf("K=%d: city table row %d = %+v, want %+v", k, i, gotTable[i], rr)
		}
	}
}
