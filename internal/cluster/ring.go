// Package cluster turns N independent collectord instances into one
// logical collector: a consistent-hash ring partitions the (city, ISP)
// keyspace across instances, misrouted ingest batches are forwarded to
// their owner before acknowledgement, and a merged query endpoint fans out
// to every live peer and combines their aggregate state — bit-equivalent
// to a single instance having seen all records.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is the virtual-node count per member when none is given —
// enough that a three-member ring splits a city-sized keyspace within a few
// percent of evenly.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over cluster members. Every
// instance (and every cluster-aware client) builds its ring from the same
// sorted member list with the same virtual-node count, so all aligned views
// agree on every key's owner; views disagree only transiently, while a
// liveness change propagates, and the forward-on-misroute path absorbs
// exactly that window.
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
	version uint64
}

// ringPoint places one virtual node on the ring.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// NewRing builds a ring over members (advertise host:port addresses) with
// vnodes virtual nodes each (DefaultVNodes when <= 0). Members are deduped
// and sorted, so any permutation of the same set yields an identical ring.
// An empty member set is allowed; every Owner lookup then returns "".
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(m, fmt.Sprintf("#%d", v)), member: i})
		}
	}
	// Ties broken by member index (itself sorted) keep the ring a pure
	// function of the member set.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	h := fnv.New64a()
	for _, m := range uniq {
		h.Write([]byte(m))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "v%d", vnodes)
	r.version = h.Sum64()
	return r
}

// hash64 hashes a two-part key with FNV-1a plus a 64-bit avalanche
// finalizer, NUL-separating the parts so ("ab","c") and ("a","bc") land on
// different points. Raw FNV-1a clusters badly on the near-identical short
// strings virtual nodes produce ("host:port#0", "host:port#1", …) — one
// member can end up owning over half the ring — so the MurmurHash3
// finalizer scrambles the output into a uniform point.
func hash64(k1, k2 string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(k1))
	h.Write([]byte{0})
	h.Write([]byte(k2))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 fmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Owner returns the member owning key (k1, k2): the first virtual node at
// or clockwise of the key's hash. Empty ring returns "".
func (r *Ring) Owner(k1, k2 string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(k1, k2)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.members[r.points[i].member]
}

// Members returns the sorted member set the ring was built from.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Version fingerprints the (member set, vnodes) pair; two views with equal
// versions route every key identically.
func (r *Ring) Version() uint64 { return r.version }
