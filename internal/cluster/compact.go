package cluster

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"starlinkview/internal/collector"
	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/wal"
)

// CompactConfig parameterises one compaction pass over a collector WAL.
type CompactConfig struct {
	// WALDir is the WAL directory (segments + checkpoint).
	WALDir string
	// OutDir receives the release-format datasets; created if missing.
	OutDir string
	// FS overrides the filesystem (default the real one).
	FS wal.FS
}

// CompactResult summarises one pass.
type CompactResult struct {
	// ColdSegments were eligible this pass; Compacted of them were newly
	// rewritten (the rest already had outputs — the pass is idempotent).
	ColdSegments int `json:"cold_segments"`
	Compacted    int `json:"compacted"`
	// ExtensionRecords and NodeSamples count rows written this pass.
	ExtensionRecords int `json:"extension_records"`
	NodeSamples      int `json:"node_samples"`
	// Outputs are the dataset files written this pass.
	Outputs []string `json:"outputs,omitempty"`
}

// CompactColdSegments rewrites cold WAL segments as release-format
// datasets: extension records become a sorted dataset CSV (the schema the
// paper's released dataset uses), node samples become JSON lines. A segment
// is cold once it is sealed — every segment but the highest-based one. The
// writer fsyncs a segment before sealing it and never appends to it again,
// so a sealed segment's contents are durable and immutable, and the rewrite
// is a pure function of the segment file: any two compactions of the same
// segment emit byte-identical datasets.
//
// The pass is idempotent and crash-safe: each segment's outputs are written
// to temp names and renamed into place, and segments whose outputs already
// exist are skipped. It never deletes or modifies WAL files — pruning stays
// the writer's job — so it is safe to run beside a live collectord. Note
// that checkpointing prunes covered segments; to compact everything, run a
// pass before shutting the collector down (the collectord -compact-interval
// loop) or keep checkpointing disabled and compact offline.
func CompactColdSegments(cfg CompactConfig) (CompactResult, error) {
	fsys := cfg.FS
	if fsys == nil {
		fsys = wal.OSFS{}
	}
	var res CompactResult
	segs, err := wal.ListSegments(fsys, cfg.WALDir)
	if err != nil {
		return res, fmt.Errorf("cluster: compact: %w", err)
	}
	if len(segs) <= 1 {
		return res, nil // only the active segment, never cold
	}
	if err := fsys.MkdirAll(cfg.OutDir); err != nil {
		return res, fmt.Errorf("cluster: compact: mkdir out: %w", err)
	}
	for _, seg := range segs[:len(segs)-1] { // last is active
		res.ColdSegments++
		if err := compactSegment(fsys, cfg, seg, &res); err != nil {
			return res, err
		}
	}
	return res, nil
}

// outputStem maps wal-<base>.seg to the <stem> its datasets are named by:
// <stem>.csv and <stem>.nodes.json.
func outputStem(seg wal.SegmentInfo) string {
	return strings.TrimSuffix(seg.Name, ".seg")
}

func compactSegment(fsys wal.FS, cfg CompactConfig, seg wal.SegmentInfo, res *CompactResult) error {
	stem := outputStem(seg)
	csvPath := filepath.Join(cfg.OutDir, stem+".csv")
	nodePath := filepath.Join(cfg.OutDir, stem+".nodes.json")

	var recs []extension.Record
	var samples []dataset.NodeSample
	f, err := fsys.Open(filepath.Join(cfg.WALDir, seg.Name))
	if err != nil {
		return fmt.Errorf("cluster: compact: open %s: %w", seg.Name, err)
	}
	_, readErr := wal.ReadSegment(f, func(r wal.Rec) error {
		switch r.Kind {
		case collector.WALKindExtension:
			rec, err := collector.DecodeWALExtension(r.Payload)
			if err != nil {
				return err
			}
			recs = append(recs, rec)
		case collector.WALKindExtensionBatch:
			batch, err := collector.DecodeWALExtensionBatch(r.Payload)
			if err != nil {
				return err
			}
			recs = append(recs, batch...)
		case collector.WALKindNode:
			s, err := collector.DecodeWALNode(r.Payload)
			if err != nil {
				return err
			}
			samples = append(samples, s)
		}
		return nil
	})
	f.Close()
	if readErr != nil {
		return fmt.Errorf("cluster: compact: read %s: %w", seg.Name, readErr)
	}

	// Release order: group key then time, so compaction output is sorted
	// the way the released dataset is and independent of ingest arrival
	// interleaving.
	sort.SliceStable(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.City != b.City {
			return a.City < b.City
		}
		if a.ISP != b.ISP {
			return a.ISP < b.ISP
		}
		if !a.At.Equal(b.At) {
			return a.At.Before(b.At)
		}
		return a.Domain < b.Domain
	})
	sort.SliceStable(samples, func(i, j int) bool {
		a, b := samples[i], samples[j]
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.At.Before(b.At)
	})

	wrote := false
	if len(recs) > 0 {
		w, err := writeAtomic(fsys, cfg.OutDir, csvPath, func(f wal.File) error {
			return dataset.WriteExtensionCSV(f, recs)
		})
		if err != nil {
			return fmt.Errorf("cluster: compact: %s: %w", csvPath, err)
		}
		if w {
			wrote = true
			res.ExtensionRecords += len(recs)
			res.Outputs = append(res.Outputs, csvPath)
		}
	}
	if len(samples) > 0 {
		w, err := writeAtomic(fsys, cfg.OutDir, nodePath, func(f wal.File) error {
			return dataset.WriteNodeJSON(f, samples)
		})
		if err != nil {
			return fmt.Errorf("cluster: compact: %s: %w", nodePath, err)
		}
		if w {
			wrote = true
			res.NodeSamples += len(samples)
			res.Outputs = append(res.Outputs, nodePath)
		}
	}
	if wrote {
		res.Compacted++
	}
	return nil
}

// writeAtomic writes path via temp+rename, skipping (false, nil) when the
// output already exists — repeated passes rewrite nothing.
func writeAtomic(fsys wal.FS, dir, path string, fill func(wal.File) error) (bool, error) {
	if _, err := fsys.Size(path); err == nil {
		return false, nil
	}
	tmp := path + ".tmp"
	_ = fsys.Remove(tmp)
	f, err := fsys.Create(tmp)
	if err != nil {
		return false, err
	}
	if err := fill(f); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return false, err
	}
	if err := f.Close(); err != nil {
		return false, err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		return false, err
	}
	if err := fsys.SyncDir(dir); err != nil {
		return false, err
	}
	return true, nil
}
