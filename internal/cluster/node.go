package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
)

// Cluster endpoints, mounted on the collector server's mux.
const (
	PathClusterState    = "/cluster/state"
	PathClusterSnapshot = "/cluster/snapshot"
	PathClusterRing     = "/cluster/ring"
)

// NodeConfig parameterises one cluster instance.
type NodeConfig struct {
	// Server is the local collector this node wraps. The node mounts the
	// /cluster/* endpoints on it and installs itself as the server's
	// forwarder.
	Server *collector.Server
	// Self is this instance's advertise address (host:port) — what peers
	// and clients dial, and its ring identity. It must match the listen
	// address peers can actually reach.
	Self string
	// Peers are the other instances' advertise addresses.
	Peers []string
	// VNodes per ring member; every instance and ring-routing client must
	// agree (DefaultVNodes when <= 0).
	VNodes int
	// ProbeInterval enables liveness probing (zero = static membership).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default 2s).
	ProbeTimeout time.Duration
	// RequestTimeout bounds one forward or fan-out request (default 10s).
	RequestTimeout time.Duration
	// HTTPClient overrides the transport for probes, forwards and fan-outs.
	HTTPClient *http.Client
	// Tracer, when set, spans forwards (as children of the ingest request
	// that triggered them) and merged-query fan-outs.
	Tracer *trace.Tracer
}

// Node makes one collectord instance cluster-aware: it owns the membership
// view, answers the cluster query endpoints, and forwards misrouted ingest
// records to their ring owner on the local server's behalf.
type Node struct {
	cfg    NodeConfig
	mem    *Membership
	client *http.Client
	met    *nodeMetrics
	obsMet *obsplaneMetrics
}

// nodeMetrics are the per-instance cluster series, registered next to the
// collector's own metrics.
type nodeMetrics struct {
	misrouted      *obs.Counter
	forwardRecords *obs.CounterVec
	forwardBatches *obs.CounterVec
	forwardErrors  *obs.CounterVec
	forwardLatency *obs.HistogramVec
	ringLive       *obs.Gauge
	ringDead       *obs.Gauge
	ringRebuilds   *obs.Counter
	fanouts        *obs.Counter
	fanoutErrors   *obs.Counter
	mergeLatency   *obs.Histogram
}

func newNodeMetrics(reg *obs.Registry) *nodeMetrics {
	return &nodeMetrics{
		misrouted: reg.Counter("cluster_misrouted_records_total",
			"Ingested records owned by another instance and forwarded there."),
		forwardRecords: reg.CounterVec("cluster_forwarded_records_total",
			"Records forwarded to each peer and accepted by it.", "peer"),
		forwardBatches: reg.CounterVec("cluster_forward_batches_total",
			"Forward POSTs sent to each peer.", "peer"),
		forwardErrors: reg.CounterVec("cluster_forward_errors_total",
			"Forward POSTs to each peer that failed.", "peer"),
		forwardLatency: reg.HistogramVec("cluster_forward_latency_seconds",
			"Forward round-trip latency per peer (exponential native-histogram grid).",
			obs.NativeBuckets(1, 1e-4, 36), "peer"),
		ringLive: reg.Gauge("cluster_ring_live_members",
			"Members currently on the ring."),
		ringDead: reg.Gauge("cluster_ring_dead_members",
			"Members failing liveness probes, excluded from the ring."),
		ringRebuilds: reg.Counter("cluster_ring_rebuilds_total",
			"Ring rebuilds caused by liveness changes (plus the initial build)."),
		fanouts: reg.Counter("cluster_snapshot_fanouts_total",
			"Merged-query fan-outs served."),
		fanoutErrors: reg.Counter("cluster_snapshot_fanout_errors_total",
			"Merged-query fan-outs that failed on a peer fetch or merge."),
		mergeLatency: reg.Histogram("cluster_snapshot_merge_latency_seconds",
			"Wall time of one merged query: fan-out, decode and merge.",
			obs.NativeBuckets(2, 1e-3, 40)),
	}
}

// NewNode wires a collector server into the cluster: builds membership (and
// its probe loop), registers cluster metrics and endpoints, and installs
// the forwarder. Call after Server.Start so Self is routable, and Close on
// shutdown.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Server == nil {
		return nil, fmt.Errorf("cluster: NodeConfig.Server is required")
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	n := &Node{cfg: cfg, client: cfg.HTTPClient}
	if n.client == nil {
		n.client = &http.Client{}
	}
	n.met = newNodeMetrics(cfg.Server.Aggregator().Registry())
	n.obsMet = newObsplaneMetrics(cfg.Server.Aggregator().Registry())
	mem, err := NewMembership(MembershipConfig{
		Self:          cfg.Self,
		Peers:         cfg.Peers,
		VNodes:        cfg.VNodes,
		ProbeInterval: cfg.ProbeInterval,
		ProbeTimeout:  cfg.ProbeTimeout,
		HTTPClient:    n.client,
		OnRebuild: func(_ *Ring, live, dead int) {
			n.met.ringLive.Set(float64(live))
			n.met.ringDead.Set(float64(dead))
			n.met.ringRebuilds.Inc()
		},
	})
	if err != nil {
		return nil, err
	}
	n.mem = mem
	cfg.Server.Handle(PathClusterState, n.handleState)
	cfg.Server.Handle(PathClusterSnapshot, n.handleSnapshot)
	cfg.Server.Handle(PathClusterRing, n.handleRing)
	cfg.Server.Handle(PathClusterMetrics, n.handleClusterMetrics)
	cfg.Server.Handle(PathClusterTraces, n.handleClusterTraces)
	cfg.Server.Handle(PathClusterTraces+"/", n.handleClusterTrace)
	cfg.Server.SetForwarder(n)
	return n, nil
}

// Membership exposes the node's membership view (tests drive Probe through
// it).
func (n *Node) Membership() *Membership { return n.mem }

// Close stops the probe loop. The wrapped server is shut down separately.
func (n *Node) Close() { n.mem.Close() }

// owner maps a ring owner to a forward target: "" when this instance owns
// the key (or the ring is empty, when applying locally beats dropping).
func (n *Node) owner(addr string) string {
	if addr == n.cfg.Self {
		return ""
	}
	return addr
}

// OwnerExtension implements collector.Forwarder: the browsing keyspace is
// partitioned by (city, ISP), the aggregation group key.
func (n *Node) OwnerExtension(r extension.Record) string {
	return n.owner(n.mem.Ring().Owner(r.City, r.ISP))
}

// OwnerNode partitions node samples by (node, kind).
func (n *Node) OwnerNode(s dataset.NodeSample) string {
	return n.owner(n.mem.Ring().Owner(s.Node, s.Kind))
}

// ForwardExtension relays misrouted browsing records to their owner and
// returns how many it accepted. The POST carries HeaderForwarded, so the
// owner applies the batch whatever its own ring says — the terminal hop.
func (n *Node) ForwardExtension(peer string, recs []extension.Record, parent trace.SpanContext) (int, error) {
	payload, err := collector.EncodeExtensionBatch(recs)
	if err != nil {
		return 0, err
	}
	return n.forward(peer, collector.PathIngestExtension, collector.ExtensionContentType,
		payload, len(recs), parent)
}

// ForwardNode relays misrouted node samples to their owner.
func (n *Node) ForwardNode(peer string, samples []dataset.NodeSample, parent trace.SpanContext) (int, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range samples {
		if err := enc.Encode(s); err != nil {
			return 0, err
		}
	}
	return n.forward(peer, collector.PathIngestNode, collector.NodeContentType,
		buf.Bytes(), len(samples), parent)
}

func (n *Node) forward(peer, path, contentType string, payload []byte, records int, parent trace.SpanContext) (accepted int, err error) {
	start := time.Now()
	var sp *trace.Span
	if n.cfg.Tracer != nil {
		sp = n.cfg.Tracer.StartChild(parent, "cluster.forward")
		sp.SetAttr("peer", peer)
		sp.SetInt("records", int64(records))
		defer func() {
			sp.SetError(err)
			sp.Finish()
		}()
	}
	n.met.misrouted.Add(uint64(records))
	n.met.forwardBatches.With(peer).Inc()
	defer func() {
		n.met.forwardLatency.With(peer).Observe(time.Since(start).Seconds())
		if err != nil {
			n.met.forwardErrors.With(peer).Inc()
		} else {
			n.met.forwardRecords.With(peer).Add(uint64(accepted))
		}
	}()

	req, err := http.NewRequest(http.MethodPost, "http://"+peer+path, bytes.NewReader(payload))
	if err != nil {
		return 0, fmt.Errorf("cluster: forward to %s: %w", peer, err)
	}
	req.Header.Set("Content-Type", contentType)
	req.Header.Set(collector.HeaderForwarded, n.cfg.Self)
	if sp != nil {
		req.Header.Set(trace.TraceparentHeader, sp.Context().Traceparent())
	}
	ctx, cancel := timeoutContext(n.cfg.RequestTimeout)
	defer cancel()
	resp, err := n.client.Do(req.WithContext(ctx))
	if err != nil {
		return 0, fmt.Errorf("cluster: forward to %s: %w", peer, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("cluster: forward to %s: %s: %s", peer, resp.Status, msg)
	}
	var reply collector.IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return 0, fmt.Errorf("cluster: forward to %s: decode reply: %w", peer, err)
	}
	if reply.Dropped > 0 {
		// The owner acked but shed load; the batch is not fully owned
		// anywhere, so the original sender must not see a 200.
		return reply.Accepted, fmt.Errorf("cluster: forward to %s: %d records dropped", peer, reply.Dropped)
	}
	return reply.Accepted, nil
}

// handleState serves this instance's complete mergeable aggregate state.
func (n *Node) handleState(w http.ResponseWriter, r *http.Request) {
	st, err := n.cfg.Server.Aggregator().Snapshot().ExportState()
	if err != nil {
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("export state: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// RingReply is the GET /cluster/ring payload. Version is decimal-encoded
// as a string (a raw uint64 does not survive JSON number parsing in every
// consumer); equal strings across instances mean converged routing.
type RingReply struct {
	Self    string        `json:"self"`
	VNodes  int           `json:"vnodes"`
	Version string        `json:"version"`
	Members []MemberState `json:"members"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	ring := n.mem.Ring()
	vn := n.cfg.VNodes
	if vn <= 0 {
		vn = DefaultVNodes
	}
	writeJSON(w, http.StatusOK, RingReply{
		Self:    n.cfg.Self,
		VNodes:  vn,
		Version: strconv.FormatUint(ring.Version(), 10),
		Members: n.mem.States(),
	})
}

// MergedReply is the GET /cluster/snapshot payload: the snapshot a single
// instance would serve had it ingested every record the listed peers hold,
// rendered through the same row and city-table code paths as /snapshot.
type MergedReply struct {
	TakenAt   time.Time            `json:"taken_at"`
	Peers     []string             `json:"peers"`
	Snapshot  *collector.Snapshot  `json:"snapshot"`
	CityTable []collector.CityJSON `json:"city_table"`
}

func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	reply, err := n.MergedSnapshot(rootSpan(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

// MergedSnapshot fans the state query out to every live member (the local
// aggregator answers for self, skipping a network hop) and merges the
// results. Any live peer failing fails the whole query: a partial merge
// would silently undercount, and the caller can retry after the next probe
// round excises the dead peer.
func (n *Node) MergedSnapshot(parent *trace.Span) (*MergedReply, error) {
	start := time.Now()
	n.met.fanouts.Inc()
	live := n.mem.Live()
	states := make([]collector.MergeState, len(live))
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, addr := range live {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			if addr == n.cfg.Self {
				states[i], errs[i] = n.cfg.Server.Aggregator().Snapshot().ExportState()
				return
			}
			states[i], errs[i] = n.fetchState(addr, parent)
		}(i, addr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			n.met.fanoutErrors.Inc()
			return nil, fmt.Errorf("cluster: merged snapshot: peer %s: %w", live[i], err)
		}
	}
	snap, err := collector.MergeStates(states...)
	if err != nil {
		n.met.fanoutErrors.Inc()
		return nil, fmt.Errorf("cluster: merged snapshot: %w", err)
	}
	n.met.mergeLatency.Observe(time.Since(start).Seconds())
	peers := append([]string(nil), live...)
	sort.Strings(peers)
	return &MergedReply{
		TakenAt:   time.Now().UTC(),
		Peers:     peers,
		Snapshot:  snap,
		CityTable: snap.CityTableJSON(),
	}, nil
}

// fetchState pulls one peer's mergeable state, spanned as a child of the
// merged query's root span when tracing.
func (n *Node) fetchState(addr string, parent *trace.Span) (st collector.MergeState, err error) {
	if n.cfg.Tracer != nil && parent != nil {
		sp := n.cfg.Tracer.StartChild(parent.Context(), "cluster.fetch_state")
		sp.SetAttr("peer", addr)
		defer func() {
			sp.SetError(err)
			sp.Finish()
		}()
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+PathClusterState, nil)
	if err != nil {
		return st, err
	}
	ctx, cancel := timeoutContext(n.cfg.RequestTimeout)
	defer cancel()
	resp, err := n.client.Do(req.WithContext(ctx))
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return st, fmt.Errorf("state fetch: %s: %s", resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("state decode: %w", err)
	}
	return st, nil
}

// rootSpan returns the request's root span (nil when untraced).
func rootSpan(r *http.Request) *trace.Span {
	return trace.FromContext(r.Context())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{msg})
}
