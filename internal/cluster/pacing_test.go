package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/extension"
)

// TestClientPacesOn429 pins the backpressure contract: a 429 with
// Retry-After makes the client pause (jittered around the server's hint)
// and resend the identical batch without consuming a retry attempt, and
// every pause is surfaced through OnPace and the Paced counter.
func TestClientPacesOn429(t *testing.T) {
	var mu sync.Mutex
	rejects := 2
	var bodies []int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		var n int
		buf := make([]byte, 1<<20)
		for {
			m, err := r.Body.Read(buf)
			n += m
			if err != nil {
				break
			}
		}
		bodies = append(bodies, n)
		if rejects > 0 {
			rejects--
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"overloaded: unsampled request shed (queue_depth)"}`)
			return
		}
		fmt.Fprint(w, `{"accepted":1,"dropped":0,"forwarded":0}`)
	}))
	defer srv.Close()

	var paces []time.Duration
	c, err := NewClient(ClientConfig{
		Targets: []string{strings.TrimPrefix(srv.URL, "http://")},
		Wire:    collector.WireBatch,
		Retries: -1, // no failure retries: pacing alone must recover
		OnPace:  func(d time.Duration) { paces = append(paces, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRecord(extension.Record{UserID: "u", City: "London", ISP: "starlink", At: time.Unix(100, 0)}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Flush(); err != nil {
		t.Fatalf("flush should succeed through pacing: %v", err)
	}
	elapsed := time.Since(start)

	st := c.Stats()
	if st.Paced != 2 {
		t.Fatalf("Paced = %d, want 2", st.Paced)
	}
	if st.Retries != 0 {
		t.Fatalf("Retries = %d, want 0 (pacing must not consume retry attempts)", st.Retries)
	}
	if len(paces) != 2 {
		t.Fatalf("OnPace fired %d times, want 2", len(paces))
	}
	var total time.Duration
	for _, d := range paces {
		// Jittered around the 1s Retry-After hint: uniform in [d/2, 3d/2).
		if d < 500*time.Millisecond || d >= 1500*time.Millisecond {
			t.Fatalf("pace %v outside the jitter window [500ms, 1.5s)", d)
		}
		total += d
	}
	if elapsed < total {
		t.Fatalf("flush returned in %v, before the %v of pacing it reported", elapsed, total)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(bodies) != 3 {
		t.Fatalf("server saw %d posts, want 3 (2 shed + 1 accepted)", len(bodies))
	}
	if bodies[0] != bodies[1] || bodies[1] != bodies[2] {
		t.Fatalf("paced resends changed the payload: sizes %v", bodies)
	}
}

// TestClientPaceBudgetExhausts pins the cap: past PaceRetries consecutive
// 429s the send fails (after the configured failure retries) instead of
// pacing forever.
func TestClientPaceBudgetExhausts(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded"}`)
	}))
	defer srv.Close()

	paces := 0
	c, err := NewClient(ClientConfig{
		Targets:      []string{strings.TrimPrefix(srv.URL, "http://")},
		Wire:         collector.WireBatch,
		Retries:      -1,
		PaceRetries:  1,
		RetryBackoff: time.Millisecond,
		OnPace:       func(time.Duration) { paces++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddRecord(extension.Record{UserID: "u", City: "London", ISP: "starlink", At: time.Unix(100, 0)}); err != nil {
		t.Fatal(err)
	}
	err = c.Flush()
	if err == nil {
		t.Fatal("flush succeeded against a permanently overloaded server")
	}
	if _, ok := collector.IsOverloaded(err); !ok {
		t.Fatalf("exhausted send should surface the overload error, got: %v", err)
	}
	if paces != 1 {
		t.Fatalf("OnPace fired %d times, want exactly PaceRetries=1", paces)
	}
}
