package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
)

// partitionCounts returns how many of n round-robin items land on each of
// the k partitions.
func partitionCounts(n, k int) []int {
	out := make([]int, k)
	for i := 0; i < n; i++ {
		out[i%k]++
	}
	return out
}

// fetchClusterMetrics scrapes one coordinator's federated exposition.
func fetchClusterMetrics(t *testing.T, coordinator string) []byte {
	t.Helper()
	resp, err := http.Get("http://" + coordinator + PathClusterMetrics)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s: %s", PathClusterMetrics, resp.Status, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("federated scrape Content-Type %q", ct)
	}
	return body
}

// TestFederatedMetricsPartitionProperty is the federation invariant: for
// K in {1,2,3,5}, partitioning the record stream across K instances and
// scraping the coordinator's /cluster/metrics yields every ingest-driven
// counter — and every histogram _count — exactly equal to a single
// instance that ingested the whole stream. Counters merge by exact sums,
// never approximation.
func TestFederatedMetricsPartitionProperty(t *testing.T) {
	records := testRecords(3000)
	samples := testSamples(600)

	// Reference: one aggregator, its own registry, the whole stream. Every
	// nonzero series in this exposition is ingest-driven by construction.
	refReg := obs.NewRegistry()
	refAgg, err := collector.OpenAggregator(collector.Config{Shards: 2, Registry: refReg})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range records {
		if !refAgg.OfferExtension(r) {
			t.Fatalf("reference record %d rejected", i)
		}
	}
	for i, s := range samples {
		if !refAgg.OfferNodeSample(s) {
			t.Fatalf("reference sample %d rejected", i)
		}
	}
	if err := refAgg.Close(); err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := refReg.WritePrometheus(&refBuf); err != nil {
		t.Fatal(err)
	}
	refExpo, err := obs.ParseExposition(bytes.NewReader(refBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 2, 3, 5} {
		k := k
		t.Run(fmt.Sprintf("K=%d", k), func(t *testing.T) {
			srvs := make([]*collector.Server, k)
			addrs := make([]string, k)
			for i := range srvs {
				srv, err := collector.OpenServer(collector.Config{
					Shards:   2,
					Registry: obs.NewRegistry(),
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := srv.Start("127.0.0.1:0"); err != nil {
					t.Fatal(err)
				}
				srvs[i] = srv
				addrs[i] = srv.Addr()
			}
			nodes := make([]*Node, k)
			for i := range srvs {
				nodes[i] = newTestNode(t, srvs[i], addrs[i], addrs)
			}
			defer func() {
				for i := range srvs {
					nodes[i].Close()
					_ = srvs[i].Shutdown(t.Context())
				}
			}()

			// Partition the stream: instance p takes every k-th item.
			for i, r := range records {
				if !srvs[i%k].Aggregator().OfferExtension(r) {
					t.Fatalf("record %d rejected by instance %d", i, i%k)
				}
			}
			for i, s := range samples {
				if !srvs[i%k].Aggregator().OfferNodeSample(s) {
					t.Fatalf("sample %d rejected by instance %d", i, i%k)
				}
			}
			// Wait for each instance to drain its partition.
			wantPer := partitionCounts(len(records), k)
			wantSamples := partitionCounts(len(samples), k)
			deadline := time.Now().Add(10 * time.Second)
			for p := 0; p < k; p++ {
				want := uint64(wantPer[p] + wantSamples[p])
				for {
					if srvs[p].Aggregator().Snapshot().Processed == want {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("instance %d never drained to %d", p, want)
					}
					time.Sleep(10 * time.Millisecond)
				}
			}

			body := fetchClusterMetrics(t, addrs[0])
			merged, err := obs.ParseText(bytes.NewReader(body))
			if err != nil {
				t.Fatalf("K=%d: merged exposition does not re-parse: %v", k, err)
			}
			mergedExpo, err := obs.ParseExposition(bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range mergedExpo.Families {
				if f.Untyped {
					t.Errorf("K=%d: merged family %s lost its TYPE line", k, f.Name)
				}
			}

			// Every reference counter — and histogram _count — must appear
			// in the merged exposition with exactly the reference value.
			checked := 0
			for _, f := range refExpo.Families {
				switch f.Type {
				case obs.TypeCounter:
					for _, s := range f.Samples {
						mv, ok := merged.Value(s.Name, s.Labels)
						if !ok || mv != s.Value {
							t.Errorf("K=%d: counter %s%v = %v,%v want exactly %v",
								k, s.Name, s.Labels, mv, ok, s.Value)
						}
						checked++
					}
				case obs.TypeHistogram:
					for _, s := range f.Samples {
						if !strings.HasSuffix(s.Name, "_count") {
							continue
						}
						mv, ok := merged.Value(s.Name, s.Labels)
						if !ok || mv != s.Value {
							t.Errorf("K=%d: histogram count %s%v = %v,%v want exactly %v",
								k, s.Name, s.Labels, mv, ok, s.Value)
						}
						checked++
					}
				}
			}
			if checked < 10 {
				t.Fatalf("K=%d: only %d series compared; reference exposition too thin", k, checked)
			}
		})
	}
}

// startTracedInstance opens a WAL-less traced collector and wraps it in a
// node sharing the same tracer, so forwards, fan-outs and ingest spans all
// land in one per-instance ring.
func startTracedInstance(t *testing.T, seed int64) (*collector.Server, *trace.Tracer) {
	t.Helper()
	tracer := trace.New(trace.Config{Seed: seed})
	srv, err := collector.OpenServer(collector.Config{
		Shards:   2,
		Registry: obs.NewRegistry(),
		Tracer:   tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, tracer
}

// TestStitchedTraceAcrossForward is the cross-process assembly e2e: a
// sampled batch posted to one instance forwards its misrouted records to
// the owner, and GET /cluster/traces/{id} on ANY instance returns one tree
// containing both sides of the hop — the target's root span parented on
// the origin's cluster.forward span, every span tagged with its instance.
func TestStitchedTraceAcrossForward(t *testing.T) {
	srvs := make([]*collector.Server, 2)
	tracers := make([]*trace.Tracer, 2)
	addrs := make([]string, 2)
	for i := range srvs {
		srvs[i], tracers[i] = startTracedInstance(t, int64(1+i))
		addrs[i] = srvs[i].Addr()
	}
	nodes := make([]*Node, 2)
	for i := range srvs {
		n, err := NewNode(NodeConfig{
			Server: srvs[i],
			Self:   addrs[i],
			Peers:  addrs,
			Tracer: tracers[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	defer func() {
		for i := range srvs {
			nodes[i].Close()
			_ = srvs[i].Shutdown(t.Context())
		}
	}()

	// Post everything to instance 0 with a forced-sampled traceparent; the
	// ring owns some groups on instance 1, so the server forwards.
	records := testRecords(60)
	payload, err := collector.EncodeExtensionBatch(records)
	if err != nil {
		t.Fatal(err)
	}
	const traceID = "5f1e8c4b2a9d47c6b3e0f9a812d45e77"
	req, err := http.NewRequest(http.MethodPost,
		"http://"+addrs[0]+collector.PathIngestExtension, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", collector.ExtensionContentType)
	req.Header.Set(trace.TraceparentHeader, "00-"+traceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var reply collector.IngestReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reply.Forwarded == 0 {
		t.Fatalf("ingest: status %d, reply %+v — no forward happened, hop untested",
			resp.StatusCode, reply)
	}

	// Both coordinators must stitch the same story. Spans finish
	// asynchronously (shard applies), so poll for the full shape.
	for _, coordinator := range addrs {
		var tr trace.Trace
		deadline := time.Now().Add(10 * time.Second)
		for {
			ok := func() bool {
				resp, err := http.Get("http://" + coordinator + PathClusterTraces + "/" + traceID)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					return false
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					t.Fatalf("GET stitched trace: %s: %s", resp.Status, body)
				}
				if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
					t.Fatal(err)
				}
				return stitchComplete(tr, addrs)
			}()
			if ok {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("coordinator %s never stitched the full hop; have %d spans: %+v",
					coordinator, len(tr.Spans), tr.Spans)
			}
			time.Sleep(10 * time.Millisecond)
		}

		// The target's root must hang off the origin's forward span: one
		// tree across two processes.
		var forward, targetRoot *trace.SpanData
		for i := range tr.Spans {
			sd := &tr.Spans[i]
			if sd.TraceID != traceID {
				t.Fatalf("stitched span %s carries trace %s", sd.Name, sd.TraceID)
			}
			switch {
			case sd.Name == "cluster.forward":
				forward = sd
			case sd.Root && spanInstance(*sd) == addrs[1]:
				targetRoot = sd
			}
		}
		if forward == nil || targetRoot == nil {
			t.Fatalf("coordinator %s: missing forward (%v) or target root (%v)", coordinator, forward, targetRoot)
		}
		if spanInstance(*forward) != addrs[0] {
			t.Fatalf("forward span tagged %q, want origin %q", spanInstance(*forward), addrs[0])
		}
		if targetRoot.Parent != forward.SpanID {
			t.Fatalf("target root parented on %q, want forward span %q", targetRoot.Parent, forward.SpanID)
		}
	}

	// The cluster-wide listing surfaces the stitched trace with both
	// instances attributed.
	resp2, err := http.Get("http://" + addrs[0] + PathClusterTraces)
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Traces []ClusterTraceInfo `json:"traces"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	found := false
	for _, info := range listing.Traces {
		if info.ID == traceID {
			found = true
			if len(info.Instances) != 2 {
				t.Fatalf("listing attributes %v, want both instances", info.Instances)
			}
		}
	}
	if !found {
		t.Fatalf("trace %s missing from %s listing", traceID, PathClusterTraces)
	}
}

// stitchComplete reports whether the assembled trace already shows the
// whole forward hop: spans from both instances and a forward span.
func stitchComplete(tr trace.Trace, addrs []string) bool {
	seen := map[string]bool{}
	forward := false
	for _, sd := range tr.Spans {
		seen[spanInstance(sd)] = true
		if sd.Name == "cluster.forward" {
			forward = true
		}
	}
	return forward && seen[addrs[0]] && seen[addrs[1]]
}

func spanInstance(sd trace.SpanData) string {
	for _, at := range sd.Attrs {
		if at.Key == "instance" {
			return at.Value
		}
	}
	return ""
}
