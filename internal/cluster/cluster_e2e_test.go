package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/obs"
)

// startInstance opens one WAL-backed collector server, starts it on addr
// ("127.0.0.1:0" or a previous instance's exact address for a restart) and
// returns it. Each instance gets a private registry — the restarted
// aggregator must not inherit the dead one's counters.
func startInstance(t *testing.T, walDir, addr string) *collector.Server {
	t.Helper()
	srv, err := collector.OpenServer(collector.Config{
		Shards:   2,
		Registry: obs.NewRegistry(),
		WAL:      collector.WALConfig{Dir: walDir},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(addr); err != nil {
		t.Fatal(err)
	}
	return srv
}

func newTestNode(t *testing.T, srv *collector.Server, self string, peers []string) *Node {
	t.Helper()
	n, err := NewNode(NodeConfig{
		Server: srv,
		Self:   self,
		Peers:  peers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// comparable is the portion of a snapshot the byte-identity contract
// covers: rendered groups, node groups, the city table, and the ingest
// totals. (Per-shard stats are topology-dependent by design.)
type comparableSnapshot struct {
	Groups    json.RawMessage `json:"groups"`
	Nodes     json.RawMessage `json:"nodes"`
	CityTable json.RawMessage `json:"city_table"`
	Accepted  uint64          `json:"accepted"`
	Processed uint64          `json:"processed"`
}

func marshalComparable(t *testing.T, snap *collector.Snapshot) []byte {
	t.Helper()
	groups, err := json.Marshal(snap.Groups)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := json.Marshal(snap.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	table, err := json.Marshal(snap.CityTableJSON())
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(comparableSnapshot{
		Groups: groups, Nodes: nodes, CityTable: table,
		Accepted: snap.Accepted, Processed: snap.Processed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// mergedComparable polls coordinator's /cluster/snapshot until the merged
// state reflects total processed records, then returns its comparable form.
type mergedWire struct {
	Peers    []string `json:"peers"`
	Snapshot struct {
		Groups    json.RawMessage `json:"groups"`
		Nodes     json.RawMessage `json:"nodes"`
		Accepted  uint64          `json:"accepted"`
		Processed uint64          `json:"processed"`
	} `json:"snapshot"`
	CityTable json.RawMessage `json:"city_table"`
}

func mergedComparable(t *testing.T, coordinator string, total uint64) ([]byte, mergedWire) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + coordinator + PathClusterSnapshot)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("merged snapshot: %s: %s", resp.Status, body)
		}
		var wire mergedWire
		if err := json.Unmarshal(body, &wire); err != nil {
			t.Fatal(err)
		}
		if wire.Snapshot.Processed == total {
			out, err := json.Marshal(comparableSnapshot{
				Groups: wire.Snapshot.Groups, Nodes: wire.Snapshot.Nodes,
				CityTable: wire.CityTable,
				Accepted:  wire.Snapshot.Accepted, Processed: wire.Snapshot.Processed,
			})
			if err != nil {
				t.Fatal(err)
			}
			return out, wire
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never drained: processed %d of %d", wire.Snapshot.Processed, total)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterE2E is the acceptance path: three WAL-backed instances behind
// a ring-routing client, one instance killed and restarted mid-stream with
// its checkpoint deleted (forcing a full log replay), and the merged
// snapshot byte-identical to a single instance that ingested everything.
func TestClusterE2E(t *testing.T) {
	records := testRecords(3000)
	samples := testSamples(600)
	total := uint64(len(records) + len(samples))

	// Reference: one aggregator, every record in arrival order.
	ref := ingestAll(t, 0, 1, records, samples)
	refBytes := marshalComparable(t, ref)

	// Three instances. Servers start first so advertise addresses exist,
	// then the nodes wire them into a static-membership cluster.
	walDirs := make([]string, 3)
	srvs := make([]*collector.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		walDirs[i] = t.TempDir()
		srvs[i] = startInstance(t, walDirs[i], "127.0.0.1:0")
		addrs[i] = srvs[i].Addr()
	}
	nodes := make([]*Node, 3)
	for i := range srvs {
		peers := append([]string(nil), addrs...)
		nodes[i] = newTestNode(t, srvs[i], addrs[i], peers)
	}
	defer func() {
		for i := range srvs {
			nodes[i].Close()
			_ = srvs[i].Shutdown(context.Background())
		}
	}()

	httpClient := &http.Client{}
	client, err := NewClient(ClientConfig{
		Targets:    addrs,
		Route:      RouteRing,
		BatchSize:  256,
		HTTPClient: httpClient,
	})
	if err != nil {
		t.Fatal(err)
	}

	// First half of the stream.
	half := len(records) / 2
	for _, r := range records[:half] {
		if err := client.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range samples[:len(samples)/2] {
		if err := client.AddNodeSample(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill instance 1 gracefully (acked records are fsynced; Shutdown
	// drains), then delete its checkpoint so the restart must rebuild the
	// whole state from the log, and bring it back on the same address.
	nodes[1].Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := srvs[1].Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := os.Remove(filepath.Join(walDirs[1], "checkpoint")); err != nil {
		t.Fatalf("delete checkpoint: %v", err)
	}
	httpClient.CloseIdleConnections()
	srvs[1] = startInstance(t, walDirs[1], addrs[1])
	nodes[1] = newTestNode(t, srvs[1], addrs[1], addrs)
	rec := srvs[1].Aggregator().WALRecovery()
	if rec.CheckpointLSN != 0 || rec.ReplayedRecords == 0 {
		t.Fatalf("restart did not fully replay the log: %+v", rec)
	}

	// Second half.
	for _, r := range records[half:] {
		if err := client.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range samples[len(samples)/2:] {
		if err := client.AddNodeSample(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if st := client.Stats(); st.Forwarded != 0 {
		t.Errorf("aligned ring routing forwarded %d records, want 0", st.Forwarded)
	}

	// Every instance answers the merged query with the same bytes, and
	// those bytes equal the single-instance reference.
	for i, coordinator := range addrs {
		got, wire := mergedComparable(t, coordinator, total)
		if len(wire.Peers) != 3 {
			t.Fatalf("coordinator %d merged %d peers, want 3", i, len(wire.Peers))
		}
		if !bytes.Equal(got, refBytes) {
			t.Errorf("coordinator %d: merged snapshot differs from single-instance reference\nmerged: %s\nsingle: %s",
				i, got, refBytes)
		}
	}

	// Ring views converged: every instance reports the same version.
	var versions []string
	for _, addr := range addrs {
		resp, err := http.Get("http://" + addr + PathClusterRing)
		if err != nil {
			t.Fatal(err)
		}
		var ring RingReply
		if err := json.NewDecoder(resp.Body).Decode(&ring); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		versions = append(versions, ring.Version)
	}
	if versions[0] != versions[1] || versions[1] != versions[2] {
		t.Errorf("ring versions diverged: %v", versions)
	}
}

// TestForwardOnMisroute sprays batches round-robin so most records land on
// the wrong instance, and verifies the forward path loses nothing: every
// record is accepted exactly once somewhere, forwards are counted in the
// cluster metrics, and the merged result still matches the reference.
func TestForwardOnMisroute(t *testing.T) {
	records := testRecords(1200)
	samples := testSamples(300)
	total := uint64(len(records) + len(samples))
	ref := ingestAll(t, 0, 1, records, samples)

	regs := make([]*obs.Registry, 3)
	srvs := make([]*collector.Server, 3)
	addrs := make([]string, 3)
	for i := range srvs {
		regs[i] = obs.NewRegistry()
		srv, err := collector.OpenServer(collector.Config{Shards: 2, Registry: regs[i]})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	nodes := make([]*Node, 3)
	for i := range srvs {
		nodes[i] = newTestNode(t, srvs[i], addrs[i], addrs)
	}
	defer func() {
		for i := range srvs {
			nodes[i].Close()
			_ = srvs[i].Shutdown(context.Background())
		}
	}()

	client, err := NewClient(ClientConfig{Targets: addrs, Route: RouteRR, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range records {
		if err := client.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range samples {
		if err := client.AddNodeSample(s); err != nil {
			t.Fatal(err)
		}
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	st := client.Stats()
	if st.Forwarded == 0 {
		t.Fatal("round-robin routing forwarded nothing; misroute path untested")
	}

	// The forward volume the clients saw must match the servers' metric.
	var misrouted uint64
	for _, reg := range regs {
		misrouted += reg.Counter("cluster_misrouted_records_total",
			"Ingested records owned by another instance and forwarded there.").Value()
	}
	if misrouted != st.Forwarded {
		t.Errorf("metric counts %d misrouted records, replies count %d", misrouted, st.Forwarded)
	}

	// Zero loss: each record accepted exactly once across the cluster.
	gotBytes, wire := mergedComparable(t, addrs[0], total)
	if wire.Snapshot.Accepted != total {
		t.Errorf("cluster accepted %d records, want exactly %d", wire.Snapshot.Accepted, total)
	}
	// Per-group order survives the forward hop (the client is synchronous
	// and a group's records all funnel to one owner), so even the merged
	// float sums match the reference bit for bit.
	if !bytes.Equal(gotBytes, marshalComparable(t, ref)) {
		t.Error("merged snapshot after forwarding differs from reference")
	}
}
