package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
	"starlinkview/internal/trace"
)

// Routing policies for the cluster client.
const (
	// RouteRing sends every record straight to its ring owner — the
	// aligned mode where no server-side forwarding happens at all.
	RouteRing = "ring"
	// RouteRR sprays batches round-robin across targets and relies on the
	// servers' forward-on-misroute to place records; it needs no ring
	// agreement, at the cost of one extra hop for most records.
	RouteRR = "rr"
)

// ClientConfig parameterises the cluster-aware ingest client.
type ClientConfig struct {
	// Targets are the instances' advertise addresses (host:port).
	Targets []string
	// Route is RouteRing (default) or RouteRR.
	Route string
	// VNodes must match the servers' ring (DefaultVNodes when <= 0); only
	// meaningful with RouteRing.
	VNodes int
	// Wire selects the extension-record encoding per target POST:
	// collector.WireCSV (default) or collector.WireBatch, which ships each
	// per-owner buffer as one columnar frame to /ingest/batch.
	Wire collector.Wire
	// BatchSize flushes a per-target buffer at this many records
	// (default 512).
	BatchSize int
	// Retries resends a failed batch this many times (default 2). A batch
	// is retried verbatim: the ingest protocol is at-least-once, and a
	// refused connection means the records were definitely not applied.
	Retries int
	// RetryBackoff sleeps between attempts (default 50ms, doubling).
	RetryBackoff time.Duration
	// PaceRetries bounds how many consecutive 429 responses a single batch
	// absorbs as pacing (default 8, negative disables pacing). A paced
	// resend honours the server's Retry-After with jitter and does not
	// consume a Retries attempt: backpressure is flow control, not failure.
	PaceRetries int
	// OnPace, when set, observes every pacing pause with the sleep about to
	// be taken — the campaign driver counts these as campaign_paced_total.
	OnPace func(d time.Duration)
	// HTTPClient overrides the transport.
	HTTPClient *http.Client
	// Tracer, when set, spans each send; a retry's span links back to the
	// failed attempt's context, chaining the attempts for the trace view.
	Tracer *trace.Tracer
}

// ClientStats summarise a cluster client's sends.
type ClientStats struct {
	Records   uint64 `json:"records"`
	Batches   uint64 `json:"batches"`
	Retries   uint64 `json:"retries"`
	Paced     uint64 `json:"paced"`
	Forwarded uint64 `json:"forwarded"`
}

// Client routes records to a cluster of collector instances. With
// RouteRing it buffers per target by ring owner, so an aligned cluster
// never forwards; with RouteRR it distributes batches evenly and lets the
// servers sort ownership out. Unlike collector.Client it keeps every batch
// until the server acknowledges it, so a transient send failure loses
// nothing. Not safe for concurrent use; give each producer its own client.
type Client struct {
	cfg   ClientConfig
	ring  *Ring
	ext   map[string][]extension.Record
	nodes map[string][]dataset.NodeSample
	enc   dataset.BatchEncoder
	rr    int
	stats ClientStats
}

// NewClient builds a client over cfg.Targets.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("cluster: client needs at least one target")
	}
	switch cfg.Route {
	case "", RouteRing:
		cfg.Route = RouteRing
	case RouteRR:
	default:
		return nil, fmt.Errorf("cluster: unknown route policy %q", cfg.Route)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 512
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	} else if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.PaceRetries == 0 {
		cfg.PaceRetries = 8
	} else if cfg.PaceRetries < 0 {
		cfg.PaceRetries = 0
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{}
	}
	c := &Client{
		cfg:   cfg,
		ext:   make(map[string][]extension.Record),
		nodes: make(map[string][]dataset.NodeSample),
	}
	if cfg.Route == RouteRing {
		c.ring = NewRing(cfg.Targets, cfg.VNodes)
	}
	return c, nil
}

// target picks where a record goes: its ring owner, or the next target in
// round-robin order.
func (c *Client) target(k1, k2 string) string {
	if c.ring != nil {
		return c.ring.Owner(k1, k2)
	}
	t := c.cfg.Targets[c.rr%len(c.cfg.Targets)]
	c.rr++
	return t
}

// AddRecord buffers one browsing record, flushing its target's buffer when
// full.
func (c *Client) AddRecord(r extension.Record) error {
	t := c.target(r.City, r.ISP)
	c.ext[t] = append(c.ext[t], r)
	if len(c.ext[t]) >= c.cfg.BatchSize {
		return c.flushExt(t)
	}
	return nil
}

// AddNodeSample buffers one node sample.
func (c *Client) AddNodeSample(s dataset.NodeSample) error {
	t := c.target(s.Node, s.Kind)
	c.nodes[t] = append(c.nodes[t], s)
	if len(c.nodes[t]) >= c.cfg.BatchSize {
		return c.flushNodes(t)
	}
	return nil
}

// Flush sends every pending buffer.
func (c *Client) Flush() error {
	for t := range c.ext {
		if err := c.flushExt(t); err != nil {
			return err
		}
	}
	for t := range c.nodes {
		if err := c.flushNodes(t); err != nil {
			return err
		}
	}
	return nil
}

// Close flushes whatever remains.
func (c *Client) Close() error { return c.Flush() }

// Stats returns the client's send counters.
func (c *Client) Stats() ClientStats { return c.stats }

func (c *Client) flushExt(t string) error {
	if len(c.ext[t]) == 0 {
		return nil
	}
	path, contentType := collector.PathIngestExtension, collector.ExtensionContentType
	var payload []byte
	var err error
	if c.cfg.Wire == collector.WireBatch {
		path, contentType = collector.PathIngestBatch, collector.BatchContentType
		// The reusable encoder's frame is valid until the next Encode; send
		// (including every retry, which resends the same payload) finishes
		// before another flush can run.
		payload = c.enc.Encode(c.ext[t])
	} else if payload, err = collector.EncodeExtensionBatch(c.ext[t]); err != nil {
		return err
	}
	reply, err := c.send(t, path, contentType, payload, len(c.ext[t]))
	if err != nil {
		return err
	}
	// Acked: only now may the buffer go.
	c.account(reply, len(c.ext[t]))
	c.ext[t] = c.ext[t][:0]
	return nil
}

func (c *Client) flushNodes(t string) error {
	if len(c.nodes[t]) == 0 {
		return nil
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, s := range c.nodes[t] {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	reply, err := c.send(t, collector.PathIngestNode, collector.NodeContentType,
		buf.Bytes(), len(c.nodes[t]))
	if err != nil {
		return err
	}
	c.account(reply, len(c.nodes[t]))
	c.nodes[t] = c.nodes[t][:0]
	return nil
}

func (c *Client) account(reply collector.IngestReply, records int) {
	c.stats.Batches++
	c.stats.Records += uint64(records)
	c.stats.Forwarded += uint64(reply.Forwarded)
}

// pacePause is the jittered backoff a 429 earns: uniform in [d/2, 3d/2)
// around the server's Retry-After hint, so a fleet of paced senders does not
// re-arrive in lockstep and re-trigger the shed watermark together.
func pacePause(d time.Duration) time.Duration {
	if d <= 0 {
		d = time.Second
	}
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// send posts one batch with retries. Each attempt gets its own span; a
// retry's span links to the previous attempt's context, so the trace view
// shows the chain end to end even though each attempt is its own trace.
//
// A 429 is handled as backpressure, not failure: the client sleeps the
// server's (jittered) Retry-After and resends, up to PaceRetries times per
// batch, without consuming a Retries attempt. Only transport errors and
// non-429 statuses burn retries.
func (c *Client) send(target, path, contentType string, payload []byte, records int) (collector.IngestReply, error) {
	var reply collector.IngestReply
	var lastErr error
	var prev trace.SpanContext
	backoff := c.cfg.RetryBackoff
	attempt, paced := 0, 0
	for {
		var sp *trace.Span
		if c.cfg.Tracer != nil {
			sp = c.cfg.Tracer.StartRoot("cluster.client.send", trace.SpanContext{})
			sp.SetAttr("target", target)
			sp.SetInt("records", int64(records))
			sp.SetInt("attempt", int64(attempt))
			if attempt > 0 || paced > 0 {
				reason := "retry"
				if paced > 0 && attempt == 0 {
					reason = "paced"
				}
				sp.AddLink(prev, trace.Str("reason", reason), trace.Int("attempt", int64(attempt)))
			}
			prev = sp.Context()
		}
		reply, lastErr = c.post(target, path, contentType, payload, sp)
		sp.SetError(lastErr)
		sp.Finish()
		if lastErr == nil {
			return reply, nil
		}
		if d, ok := collector.IsOverloaded(lastErr); ok && paced < c.cfg.PaceRetries {
			paced++
			c.stats.Paced++
			pause := pacePause(d)
			if c.cfg.OnPace != nil {
				c.cfg.OnPace(pause)
			}
			time.Sleep(pause)
			continue
		}
		if attempt >= c.cfg.Retries {
			break
		}
		attempt++
		c.stats.Retries++
		time.Sleep(backoff)
		backoff *= 2
	}
	return reply, fmt.Errorf("cluster: send to %s after %d attempts: %w",
		target, attempt+1, lastErr)
}

func (c *Client) post(target, path, contentType string, payload []byte, sp *trace.Span) (collector.IngestReply, error) {
	var reply collector.IngestReply
	req, err := http.NewRequest(http.MethodPost, "http://"+target+path, bytes.NewReader(payload))
	if err != nil {
		return reply, err
	}
	req.Header.Set("Content-Type", contentType)
	if sp != nil {
		req.Header.Set(trace.TraceparentHeader, sp.Context().Traceparent())
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return reply, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return reply, collector.NewOverloadedError(resp, string(msg))
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return reply, fmt.Errorf("%s: %s", resp.Status, msg)
	}
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return reply, err
	}
	return reply, nil
}
