package cluster

import (
	"fmt"
	"time"

	"starlinkview/internal/dataset"
	"starlinkview/internal/extension"
)

// Shorthands for the two streamed record types.
type (
	record = extension.Record
	sample = dataset.NodeSample
)

// testRecords builds n deterministic browsing records spanning several
// (city, ISP) groups, so any partitioning splits at least some groups.
func testRecords(n int) []extension.Record {
	cities := []string{"seattle", "berlin", "tokyo", "austin", "lagos"}
	isps := []string{"starlink", "comcast", "telekom"}
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]extension.Record, n)
	for i := range out {
		out[i] = extension.Record{
			UserID:  fmt.Sprintf("u%03d", i%41),
			City:    cities[i%len(cities)],
			Country: "test",
			ISP:     isps[(i/len(cities))%len(isps)],
			ASN:     64512 + i%3,
			At:      base.Add(time.Duration(i) * time.Second),
			Domain:  fmt.Sprintf("site%02d.example", i%37),
			Rank:    1 + i%1000,
			Popular: i%3 == 0,
			PTTMs:   20 + float64(i%400)*0.75,
			PLTMs:   180 + float64(i%900)*1.25,
		}
	}
	return out
}

// testSamples builds n deterministic node samples over several (node, kind)
// groups.
func testSamples(n int) []dataset.NodeSample {
	nodes := []string{"rpi-anchorage", "rpi-fairbanks", "rpi-utqiagvik"}
	kinds := []string{"iperf", "udp", "speedtest"}
	base := time.Date(2025, 3, 1, 0, 0, 0, 0, time.UTC)
	out := make([]dataset.NodeSample, n)
	for i := range out {
		out[i] = dataset.NodeSample{
			Node:     nodes[i%len(nodes)],
			Kind:     kinds[(i/len(nodes))%len(kinds)],
			At:       base.Add(time.Duration(i) * time.Minute),
			DownMbps: 50 + float64(i%200)*0.9,
			UpMbps:   5 + float64(i%40)*0.2,
			LossPct:  float64(i%7) * 0.5,
			PingMs:   30 + float64(i%90)*0.6,
		}
	}
	return out
}
