package cluster

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/obs"
	"starlinkview/internal/trace"
)

// The cluster-wide observability plane: any instance answers for the whole
// cluster. GET /cluster/metrics fans out to every live peer's /metrics,
// merges the expositions (obs.MergeExpositions: counters and histogram
// buckets sum exactly, gauges keep per-peer children under an `instance`
// label) and re-exposes one deterministic exposition. GET /cluster/traces
// lists the union of the peers' tail-sampled rings, and
// GET /cluster/traces/{id} stitches the spans of one trace across the
// forward hop into a single tree (trace.Assemble) that tools/traceview
// renders as a cross-instance waterfall.
const (
	PathClusterMetrics = "/cluster/metrics"
	PathClusterTraces  = "/cluster/traces"
)

// obsplaneMetrics instrument the federation endpoints themselves.
type obsplaneMetrics struct {
	metricsFanouts      *obs.Counter
	metricsFanoutErrors *obs.Counter
	metricsMergeLatency *obs.Histogram
	traceFanouts        *obs.Counter
	traceFanoutErrors   *obs.Counter
}

func newObsplaneMetrics(reg *obs.Registry) *obsplaneMetrics {
	return &obsplaneMetrics{
		metricsFanouts: reg.Counter("cluster_metrics_fanouts_total",
			"Federated /cluster/metrics queries served."),
		metricsFanoutErrors: reg.Counter("cluster_metrics_fanout_errors_total",
			"Federated metrics queries that failed on a peer scrape or merge."),
		metricsMergeLatency: reg.Histogram("cluster_metrics_merge_latency_seconds",
			"Wall time of one federated metrics query: fan-out, parse and merge.",
			obs.NativeBuckets(2, 1e-3, 40)),
		traceFanouts: reg.Counter("cluster_trace_fanouts_total",
			"Cross-instance trace queries served (list and stitch)."),
		traceFanoutErrors: reg.Counter("cluster_trace_fanout_errors_total",
			"Cross-instance trace queries that failed on a peer pull."),
	}
}

// handleClusterMetrics serves the merged cluster exposition.
func (n *Node) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	merged, err := n.MergedMetrics(rootSpan(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = merged.WriteText(w)
}

// MergedMetrics scrapes every live member (the local registry answers for
// self without a network hop) and merges the expositions. Any live peer
// failing fails the whole scrape — a partial merge would silently
// undercount the very counters the scrape exists to report.
func (n *Node) MergedMetrics(parent *trace.Span) (*obs.MergedExposition, error) {
	start := time.Now()
	n.obsMet.metricsFanouts.Inc()
	live := n.mem.Live()
	instances := make([]obs.Instance, len(live))
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, addr := range live {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			instances[i].Name = addr
			if addr == n.cfg.Self {
				var buf bytes.Buffer
				if err := n.cfg.Server.Aggregator().Registry().WritePrometheus(&buf); err != nil {
					errs[i] = err
					return
				}
				instances[i].Exposition, errs[i] = obs.ParseExposition(&buf)
				return
			}
			instances[i].Exposition, errs[i] = n.fetchMetrics(addr, parent)
		}(i, addr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			n.obsMet.metricsFanoutErrors.Inc()
			return nil, fmt.Errorf("cluster: merged metrics: peer %s: %w", live[i], err)
		}
	}
	merged, err := obs.MergeExpositions(instances)
	if err != nil {
		n.obsMet.metricsFanoutErrors.Inc()
		return nil, fmt.Errorf("cluster: merged metrics: %w", err)
	}
	n.obsMet.metricsMergeLatency.Observe(time.Since(start).Seconds())
	return merged, nil
}

// MetricsSource adapts the federated merge into a tsdb scrape source: a
// coordinator's embedded store then retains cluster-wide series, not just
// its own. Each call fans out to the live membership (untraced — the
// scrape tick is periodic background work, not a request) and renders the
// merged exposition into a reused buffer.
func (n *Node) MetricsSource() func() ([]byte, error) {
	var buf bytes.Buffer
	return func() ([]byte, error) {
		merged, err := n.MergedMetrics(nil)
		if err != nil {
			return nil, err
		}
		buf.Reset()
		if err := merged.WriteText(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
}

// fetchMetrics scrapes one peer's /metrics exposition.
func (n *Node) fetchMetrics(addr string, parent *trace.Span) (e *obs.ScrapedExposition, err error) {
	if n.cfg.Tracer != nil && parent != nil {
		sp := n.cfg.Tracer.StartChild(parent.Context(), "cluster.fetch_metrics")
		sp.SetAttr("peer", addr)
		defer func() {
			sp.SetError(err)
			sp.Finish()
		}()
	}
	body, err := n.fetch(addr, "/metrics")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return obs.ParseExposition(body)
}

// fetch GETs a peer endpoint under the node's request timeout.
func (n *Node) fetch(addr, path string) (io.ReadCloser, error) {
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+path, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := timeoutContext(n.cfg.RequestTimeout)
	resp, err := n.client.Do(req.WithContext(ctx))
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		cancel()
		return nil, fmt.Errorf("%s: %s: %s", path, resp.Status, msg)
	}
	return &cancelReadCloser{ReadCloser: resp.Body, cancel: cancel}, nil
}

type cancelReadCloser struct {
	io.ReadCloser
	cancel func()
}

func (c *cancelReadCloser) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// ClusterTraceInfo is one row of the GET /cluster/traces listing: a trace
// visible somewhere in the cluster, with the instances holding spans of it.
type ClusterTraceInfo struct {
	ID         string   `json:"id"`
	DurationNS int64    `json:"duration_ns"`
	Spans      int      `json:"spans"`
	Instances  []string `json:"instances"`
}

// handleClusterTraces lists the union of every live member's kept traces.
func (n *Node) handleClusterTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	limit := 64
	if v := r.URL.Query().Get("limit"); v != "" {
		lim, err := strconv.Atoi(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad limit: "+err.Error())
			return
		}
		limit = lim
	}
	sources, err := n.traceSources(rootSpan(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	byID := map[string]*ClusterTraceInfo{}
	for _, src := range sources {
		for _, tr := range src.Traces {
			info := byID[tr.ID]
			if info == nil {
				info = &ClusterTraceInfo{ID: tr.ID}
				byID[tr.ID] = info
			}
			if int64(tr.Duration) > info.DurationNS {
				info.DurationNS = int64(tr.Duration)
			}
			info.Spans += len(tr.Spans)
			if len(info.Instances) == 0 || info.Instances[len(info.Instances)-1] != src.Instance {
				info.Instances = append(info.Instances, src.Instance)
			}
		}
	}
	out := make([]ClusterTraceInfo, 0, len(byID))
	for _, info := range byID {
		sort.Strings(info.Instances)
		out = append(out, *info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurationNS != out[j].DurationNS {
			return out[i].DurationNS > out[j].DurationNS
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, http.StatusOK, struct {
		Traces []ClusterTraceInfo `json:"traces"`
	}{out})
}

// handleClusterTrace serves GET /cluster/traces/{id}: the trace's spans
// pulled from every live member and stitched into one tree.
// ?format=jsonl streams the capture format tools/traceview reads.
func (n *Node) handleClusterTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, PathClusterTraces+"/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, "want /cluster/traces/{id}")
		return
	}
	tr, ok, err := n.StitchedTrace(id, rootSpan(r))
	if err != nil {
		httpError(w, http.StatusBadGateway, err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "trace not held by any live instance")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "json":
		writeJSON(w, http.StatusOK, tr)
	case "jsonl":
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = trace.WriteJSONL(w, []trace.Trace{tr})
	default:
		httpError(w, http.StatusBadRequest, "unknown format (want json or jsonl)")
	}
}

// StitchedTrace pulls every live member's ring and assembles the trace.
func (n *Node) StitchedTrace(id string, parent *trace.Span) (trace.Trace, bool, error) {
	sources, err := n.traceSources(parent)
	if err != nil {
		return trace.Trace{}, false, err
	}
	tr, ok := trace.Assemble(id, sources)
	return tr, ok, nil
}

// traceSources pulls the kept-trace rings of every live member; the local
// tracer answers for self. Cross-instance tracing requires every instance
// to run with tracing enabled — a peer without /traces fails the pull.
func (n *Node) traceSources(parent *trace.Span) ([]trace.Source, error) {
	if n.cfg.Tracer == nil {
		return nil, fmt.Errorf("cluster: tracing disabled on this instance")
	}
	n.obsMet.traceFanouts.Inc()
	live := n.mem.Live()
	sources := make([]trace.Source, len(live))
	errs := make([]error, len(live))
	var wg sync.WaitGroup
	for i, addr := range live {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			sources[i].Instance = addr
			if addr == n.cfg.Self {
				sources[i].Traces = n.cfg.Tracer.Traces(0, 0)
				return
			}
			sources[i].Traces, errs[i] = n.fetchTraces(addr, parent)
		}(i, addr)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			n.obsMet.traceFanoutErrors.Inc()
			return nil, fmt.Errorf("cluster: trace pull: peer %s: %w", live[i], err)
		}
	}
	return sources, nil
}

// fetchTraces pulls one peer's full kept-trace ring (limit=0 = everything;
// the ring is bounded by the peer's -trace-capacity).
func (n *Node) fetchTraces(addr string, parent *trace.Span) (traces []trace.Trace, err error) {
	if n.cfg.Tracer != nil && parent != nil {
		sp := n.cfg.Tracer.StartChild(parent.Context(), "cluster.fetch_traces")
		sp.SetAttr("peer", addr)
		defer func() {
			sp.SetError(err)
			sp.Finish()
		}()
	}
	body, err := n.fetch(addr, collector.PathTraces+"?format=jsonl&limit=0")
	if err != nil {
		return nil, err
	}
	defer body.Close()
	return trace.ReadJSONL(body)
}
