// Package librespeed implements the HTTP speedtest protocol of the
// Librespeed project, which the paper embedded in its browser extension and
// hosted on a Google Cloud VM in Iowa ("we developed a Web Browser extension
// that can do speedtests within the browser (based on [33])" — [33] is
// Librespeed).
//
// The server exposes the standard Librespeed endpoints over real TCP:
//
//	GET  /garbage?ckSize=N   N chunks of 1 MiB of incompressible bytes (download)
//	POST /empty              discards the request body (upload)
//	GET  /empty              empty 200 (latency probe)
//	GET  /getIP              the caller's address
//
// The client runs the protocol phases the way the extension did: latency
// pings, a parallel-stream download, and a parallel-stream upload, measuring
// over a grace-trimmed window. Against a loopback server this measures real
// socket throughput; the unit tests throttle the connection to verify the
// measurement logic.
package librespeed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

const chunkSize = 1 << 20 // Librespeed's 1 MiB garbage chunk

// Server is a Librespeed-protocol speedtest server.
type Server struct {
	httpServer *http.Server
	listener   net.Listener
	chunk      []byte

	mu     sync.Mutex
	closed bool
}

// NewServer builds a server with a deterministic incompressible chunk.
func NewServer(seed int64) *Server {
	chunk := make([]byte, chunkSize)
	rng := rand.New(rand.NewSource(seed))
	for i := range chunk {
		chunk[i] = byte(rng.Intn(256))
	}
	s := &Server{chunk: chunk}
	mux := http.NewServeMux()
	mux.HandleFunc("/garbage", s.handleGarbage)
	mux.HandleFunc("/empty", s.handleEmpty)
	mux.HandleFunc("/getIP", s.handleGetIP)
	s.httpServer = &http.Server{Handler: mux}
	return s
}

// Listen binds the server ("127.0.0.1:0" picks a port) and starts serving in
// the background. It returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("librespeed: listen: %w", err)
	}
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go func() {
		_ = s.httpServer.Serve(ln)
	}()
	return ln.Addr().String(), nil
}

// Close shuts the server down.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.httpServer.Shutdown(ctx)
}

func (s *Server) handleGarbage(w http.ResponseWriter, r *http.Request) {
	n := 4
	if v := r.URL.Query().Get("ckSize"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 || parsed > 1024 {
			http.Error(w, "bad ckSize", http.StatusBadRequest)
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(n*chunkSize))
	for i := 0; i < n; i++ {
		if _, err := w.Write(s.chunk); err != nil {
			return // client went away
		}
	}
}

func (s *Server) handleEmpty(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost {
		_, _ = io.Copy(io.Discard, r.Body)
	}
	w.Header().Set("Content-Length", "0")
	w.WriteHeader(http.StatusOK)
}

func (s *Server) handleGetIP(w http.ResponseWriter, r *http.Request) {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	fmt.Fprint(w, host)
}

// Result is one client measurement.
type Result struct {
	PingMs   float64
	JitterMs float64
	DownMbps float64
	UpMbps   float64
	ClientIP string
}

// ClientOptions tunes a test run.
type ClientOptions struct {
	// Streams is the parallel connection count per direction (default 4,
	// Librespeed's xhr default is 3-6).
	Streams int
	// Duration is the per-direction measuring time (default 3s).
	Duration time.Duration
	// Grace is trimmed from the start of each phase (default 20% of
	// Duration), like Librespeed's overheadCompensation window.
	Grace time.Duration
	// PingCount is the number of latency probes (default 8).
	PingCount int
	// Transport overrides the HTTP transport (tests inject a throttled one).
	Transport http.RoundTripper
}

func (o *ClientOptions) defaults() {
	if o.Streams == 0 {
		o.Streams = 4
	}
	if o.Duration == 0 {
		o.Duration = 3 * time.Second
	}
	if o.Grace == 0 {
		o.Grace = o.Duration / 5
	}
	if o.PingCount == 0 {
		o.PingCount = 8
	}
}

// Client runs the Librespeed protocol against a server.
type Client struct {
	base string
	http *http.Client
	opts ClientOptions
}

// NewClient creates a client for the server at addr (host:port).
func NewClient(addr string, opts ClientOptions) *Client {
	opts.defaults()
	transport := opts.Transport
	if transport == nil {
		transport = &http.Transport{MaxIdleConnsPerHost: opts.Streams * 2}
	}
	return &Client{
		base: "http://" + addr,
		http: &http.Client{Transport: transport, Timeout: opts.Duration*4 + 10*time.Second},
		opts: opts,
	}
}

// Run executes all phases: getIP, ping, download, upload.
func (c *Client) Run() (Result, error) {
	var res Result

	ip, err := c.getIP()
	if err != nil {
		return res, err
	}
	res.ClientIP = ip

	res.PingMs, res.JitterMs, err = c.pingPhase()
	if err != nil {
		return res, err
	}
	res.DownMbps, err = c.downloadPhase()
	if err != nil {
		return res, err
	}
	res.UpMbps, err = c.uploadPhase()
	if err != nil {
		return res, err
	}
	return res, nil
}

func (c *Client) getIP() (string, error) {
	resp, err := c.http.Get(c.base + "/getIP")
	if err != nil {
		return "", fmt.Errorf("librespeed: getIP: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 256))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (c *Client) pingPhase() (pingMs, jitterMs float64, err error) {
	var rtts []float64
	for i := 0; i < c.opts.PingCount; i++ {
		t0 := time.Now()
		resp, err := c.http.Get(c.base + "/empty")
		if err != nil {
			return 0, 0, fmt.Errorf("librespeed: ping: %w", err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rtts = append(rtts, float64(time.Since(t0))/float64(time.Millisecond))
	}
	if len(rtts) == 0 {
		return 0, 0, errors.New("librespeed: no ping samples")
	}
	sum := 0.0
	for _, v := range rtts {
		sum += v
	}
	pingMs = sum / float64(len(rtts))
	for i := 1; i < len(rtts); i++ {
		d := rtts[i] - rtts[i-1]
		if d < 0 {
			d = -d
		}
		jitterMs += d
	}
	if len(rtts) > 1 {
		jitterMs /= float64(len(rtts) - 1)
	}
	return pingMs, jitterMs, nil
}

// phase runs worker goroutines that stream bytes and returns the Mbps
// measured between the grace point and the deadline.
func (c *Client) phase(worker func(counted *atomic.Int64, stop <-chan struct{})) (float64, error) {
	var counted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < c.opts.Streams; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			worker(&counted, stop)
		}()
	}
	time.Sleep(c.opts.Grace)
	counted.Store(0)
	t0 := time.Now()
	time.Sleep(c.opts.Duration)
	bytes := counted.Load()
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if elapsed <= 0 {
		return 0, errors.New("librespeed: zero measurement window")
	}
	return float64(bytes*8) / elapsed.Seconds() / 1e6, nil
}

func (c *Client) downloadPhase() (float64, error) {
	var firstErr atomic.Value
	mbps, err := c.phase(func(counted *atomic.Int64, stop <-chan struct{}) {
		buf := make([]byte, 64<<10)
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := c.http.Get(c.base + "/garbage?ckSize=8")
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			for {
				n, err := resp.Body.Read(buf)
				counted.Add(int64(n))
				if err != nil {
					break
				}
				select {
				case <-stop:
					resp.Body.Close()
					return
				default:
				}
			}
			resp.Body.Close()
		}
	})
	if err == nil {
		if e := firstErr.Load(); e != nil {
			return 0, fmt.Errorf("librespeed: download: %w", e.(error))
		}
	}
	return mbps, err
}

// countingReader feeds deterministic bytes and counts what the transport
// consumed.
type countingReader struct {
	counted *atomic.Int64
	stop    <-chan struct{}
	limit   int64
	read    int64
}

func (r *countingReader) Read(p []byte) (int, error) {
	select {
	case <-r.stop:
		return 0, io.EOF
	default:
	}
	if r.read >= r.limit {
		return 0, io.EOF
	}
	n := int64(len(p))
	if n > r.limit-r.read {
		n = r.limit - r.read
	}
	for i := int64(0); i < n; i++ {
		p[i] = byte(r.read + i)
	}
	r.read += n
	r.counted.Add(n)
	return int(n), nil
}

func (c *Client) uploadPhase() (float64, error) {
	var firstErr atomic.Value
	mbps, err := c.phase(func(counted *atomic.Int64, stop <-chan struct{}) {
		for {
			select {
			case <-stop:
				return
			default:
			}
			body := &countingReader{counted: counted, stop: stop, limit: 8 * chunkSize}
			req, err := http.NewRequest(http.MethodPost, c.base+"/empty", body)
			if err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
			req.ContentLength = body.limit
			resp, err := c.http.Do(req)
			if err != nil {
				// A request cut off by stop is expected at phase end.
				select {
				case <-stop:
					return
				default:
				}
				firstErr.CompareAndSwap(nil, err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	if err == nil {
		if e := firstErr.Load(); e != nil {
			return 0, fmt.Errorf("librespeed: upload: %w", e.(error))
		}
	}
	return mbps, err
}
