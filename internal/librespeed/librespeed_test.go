package librespeed

import (
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func startServer(t *testing.T) string {
	t.Helper()
	srv := NewServer(1)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func TestGarbageEndpoint(t *testing.T) {
	addr := startServer(t)
	resp, err := http.Get("http://" + addr + "/garbage?ckSize=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	n, err := io.Copy(io.Discard, resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*chunkSize {
		t.Errorf("garbage bytes = %d, want %d", n, 2*chunkSize)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type = %q", ct)
	}
}

func TestGarbageDefaultAndValidation(t *testing.T) {
	addr := startServer(t)
	resp, err := http.Get("http://" + addr + "/garbage")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if n != 4*chunkSize {
		t.Errorf("default garbage = %d, want %d", n, 4*chunkSize)
	}
	for _, bad := range []string{"0", "-1", "4097", "x"} {
		resp, err := http.Get("http://" + addr + "/garbage?ckSize=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("ckSize=%s -> %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestEmptyEndpoint(t *testing.T) {
	addr := startServer(t)
	resp, err := http.Get("http://" + addr + "/empty")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.ContentLength != 0 {
		t.Errorf("GET /empty: status %d length %d", resp.StatusCode, resp.ContentLength)
	}
	// POST with a body: server must drain and ack.
	resp, err = http.Post("http://"+addr+"/empty", "application/octet-stream",
		strings.NewReader(strings.Repeat("x", 100000)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("POST /empty: status %d", resp.StatusCode)
	}
}

func TestGetIP(t *testing.T) {
	addr := startServer(t)
	resp, err := http.Get("http://" + addr + "/getIP")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if got := string(b); got != "127.0.0.1" {
		t.Errorf("getIP = %q, want 127.0.0.1", got)
	}
}

func TestClientFullRun(t *testing.T) {
	addr := startServer(t)
	c := NewClient(addr, ClientOptions{
		Streams:   2,
		Duration:  300 * time.Millisecond,
		Grace:     60 * time.Millisecond,
		PingCount: 4,
	})
	res, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ClientIP != "127.0.0.1" {
		t.Errorf("client IP = %q", res.ClientIP)
	}
	if res.PingMs <= 0 || res.PingMs > 100 {
		t.Errorf("loopback ping = %v ms", res.PingMs)
	}
	// Loopback throughput should be large in both directions.
	if res.DownMbps < 50 {
		t.Errorf("loopback download = %.1f Mbps, want >> 50", res.DownMbps)
	}
	if res.UpMbps < 50 {
		t.Errorf("loopback upload = %.1f Mbps, want >> 50", res.UpMbps)
	}
}

// throttledTransport limits download bandwidth to verify measurement logic.
type throttledTransport struct {
	inner       http.RoundTripper
	bytesPerSec float64
}

type throttledBody struct {
	io.ReadCloser
	bytesPerSec float64
	start       time.Time
	read        atomic.Int64
}

func (b *throttledBody) Read(p []byte) (int, error) {
	// Cap read sizes so pacing is smooth.
	if len(p) > 16<<10 {
		p = p[:16<<10]
	}
	n, err := b.ReadCloser.Read(p)
	total := b.read.Add(int64(n))
	// Sleep until the cumulative budget allows this many bytes.
	budgetTime := time.Duration(float64(total) / b.bytesPerSec * float64(time.Second))
	if elapsed := time.Since(b.start); elapsed < budgetTime {
		time.Sleep(budgetTime - elapsed)
	}
	return n, err
}

func (t *throttledTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if strings.Contains(req.URL.Path, "garbage") {
		resp.Body = &throttledBody{
			ReadCloser:  resp.Body,
			bytesPerSec: t.bytesPerSec,
			start:       time.Now(),
		}
	}
	return resp, nil
}

func TestClientMeasuresThrottledRate(t *testing.T) {
	addr := startServer(t)
	const targetMbps = 80.0
	c := NewClient(addr, ClientOptions{
		Streams:   1,
		Duration:  500 * time.Millisecond,
		Grace:     100 * time.Millisecond,
		PingCount: 2,
		Transport: &throttledTransport{
			inner:       http.DefaultTransport,
			bytesPerSec: targetMbps / 8 * 1e6,
		},
	})
	down, err := c.downloadPhase()
	if err != nil {
		t.Fatal(err)
	}
	if down < targetMbps*0.6 || down > targetMbps*1.4 {
		t.Errorf("measured %.1f Mbps on an %.0f Mbps throttled pipe", down, targetMbps)
	}
}

func TestClientAgainstDeadServer(t *testing.T) {
	// Grab a port and close it so nothing listens.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := NewClient(addr, ClientOptions{Duration: 100 * time.Millisecond, PingCount: 1})
	if _, err := c.Run(); err == nil {
		t.Error("want error against dead server")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv := NewServer(2)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
