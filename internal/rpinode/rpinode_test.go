package rpinode

import (
	"testing"
	"time"

	"starlinkview/internal/dishy"
	"starlinkview/internal/ispnet"
	"starlinkview/internal/measure"
	"starlinkview/internal/orbit"
)

var testEpoch = time.Date(2022, 4, 11, 0, 0, 0, 0, time.UTC)

func testConstellation(t *testing.T) *orbit.Constellation {
	t.Helper()
	c, err := orbit.GenerateShell(orbit.ShellConfig{
		Name: "STARLINK", AltitudeKm: 550, InclinationDeg: 53,
		Planes: 24, SatsPerPlane: 22, PhasingF: 13,
		Epoch: testEpoch, FirstSatNum: 44000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testNode(t *testing.T, city ispnet.City, seed int64) *Node {
	t.Helper()
	n, err := New(Config{
		City: city, Constellation: testConstellation(t),
		Epoch: testEpoch, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{City: ispnet.Wiltshire, Epoch: testEpoch}); err == nil {
		t.Error("want error for missing constellation")
	}
	if _, err := New(Config{City: ispnet.Wiltshire, Constellation: testConstellation(t)}); err == nil {
		t.Error("want error for missing epoch")
	}
}

func TestNewPicksClosestServer(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 1)
	if n.Server.Name != "gcp-london" {
		t.Errorf("server = %s, want gcp-london", n.Server.Name)
	}
	override := ispnet.IowaDC
	n2, err := New(Config{
		City: ispnet.Wiltshire, Constellation: testConstellation(t),
		Epoch: testEpoch, Server: &override,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n2.Server.Name != "gcp-iowa" {
		t.Errorf("override server = %s", n2.Server.Name)
	}
}

func TestShortAndFullPathsAgreeOnRTT(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 2)
	fullRTT := n.Full.Path.BaseRTT()
	shortRTT := n.Short.Path.BaseRTT()
	diff := fullRTT - shortRTT
	if diff < 0 {
		diff = -diff
	}
	// The collapsed path must preserve end-to-end delay within a few ms.
	if diff > 10*time.Millisecond {
		t.Errorf("full RTT %v vs short RTT %v", fullRTT, shortRTT)
	}
	if len(n.Short.Path.Nodes) >= len(n.Full.Path.Nodes) {
		t.Error("short path is not shorter")
	}
}

func TestRunIperfOnce(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 3)
	s, err := n.RunIperfOnce("cubic", 4*time.Second, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.DownBps <= 0 || s.UpBps <= 0 {
		t.Fatalf("sample = %+v", s)
	}
	if s.DownBps < s.UpBps {
		t.Errorf("downlink %v below uplink %v on Starlink", s.DownBps, s.UpBps)
	}
	if !s.Wall.Equal(testEpoch.Add(s.At)) {
		t.Error("wall time mismatch")
	}
	if len(n.IperfSamples()) != 1 {
		t.Error("sample not recorded")
	}
}

func TestRunUDPOnce(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 4)
	s, err := n.RunUDPOnce(50e6, 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if s.LossPct < 0 || s.LossPct > 100 {
		t.Fatalf("loss = %v", s.LossPct)
	}
	if len(n.UDPSamples()) != 1 {
		t.Error("sample not recorded")
	}
}

func TestRunSpeedtestOnce(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 5)
	s, err := n.RunSpeedtestOnce(measure.SpeedtestOptions{PhaseDuration: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if s.Res.DownMbps <= 0 || s.Res.UpMbps <= 0 || s.Res.PingMs <= 0 {
		t.Fatalf("speedtest = %+v", s.Res)
	}
}

func TestRunSchedule(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 6)
	err := n.RunSchedule(Schedule{
		Total:      31 * time.Minute,
		IperfEvery: 10 * time.Minute,
		IperfDur:   2 * time.Second,
		UDPEvery:   15 * time.Minute,
		UDPRateBps: 40e6,
		UDPDur:     2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.IperfSamples()); got != 4 { // t=0,10,20,30
		t.Errorf("iperf samples = %d, want 4", got)
	}
	if got := len(n.UDPSamples()); got != 3 { // t=0,15,30
		t.Errorf("udp samples = %d, want 3", got)
	}
	// Samples are time-ordered and stamped within the window.
	prev := time.Duration(-1)
	for _, s := range n.IperfSamples() {
		if s.At <= prev {
			t.Error("iperf samples out of order")
		}
		prev = s.At
	}
	if err := n.RunSchedule(Schedule{}); err == nil {
		t.Error("want error for zero total")
	}
}

func TestTracerouteOnFullPath(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 7)
	hops, err := n.Traceroute(measure.TracerouteOptions{ProbesPerHop: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hops) != len(n.Full.HopAddrs) {
		t.Errorf("hops = %d, want %d", len(hops), len(n.Full.HopAddrs))
	}
}

func TestMaxMinQueueing(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 8)
	wireless, whole, err := n.MaxMinQueueing(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if wireless.MedianMs <= 0 || whole.MedianMs <= 0 {
		t.Errorf("estimates: wireless=%+v whole=%+v", wireless, whole)
	}
	if wireless.MedianMs > whole.MaxMs+20 {
		t.Errorf("bent-pipe queueing %v wildly exceeds whole-path %v", wireless.MedianMs, whole.MaxMs)
	}
}

func TestDishyStatusAndServer(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 9)
	st, err := n.DishyStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.PopPingLatencyMs < 20 || st.PopPingLatencyMs > 150 {
		t.Errorf("pop ping latency = %v ms", st.PopPingLatencyMs)
	}
	if st.DownlinkThroughputBps <= 0 {
		t.Error("no downlink capacity in status")
	}
	if st.SecondsToFirstNonemptySlot <= 0 || st.SecondsToFirstNonemptySlot > 15 {
		t.Errorf("slot remainder = %v", st.SecondsToFirstNonemptySlot)
	}

	srv, addr, err := n.ServeDishy("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := dishy.NewClient(addr).GetStatus()
	if err != nil {
		t.Fatal(err)
	}
	if got.DownlinkThroughputBps != st.DownlinkThroughputBps {
		t.Errorf("served status disagrees: %v vs %v", got.DownlinkThroughputBps, st.DownlinkThroughputBps)
	}
}

func TestRunScheduleWithSpeedtests(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 10)
	err := n.RunSchedule(Schedule{
		Total:          16 * time.Minute,
		SpeedtestEvery: 5 * time.Minute,
		SpeedtestPhase: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.SpeedSamples()); got != 4 { // t=0,5,10,15
		t.Errorf("speed samples = %d, want 4", got)
	}
	for _, s := range n.SpeedSamples() {
		if s.Res.DownMbps <= 0 || s.Res.UpMbps <= 0 {
			t.Errorf("empty speedtest at %v: %+v", s.At, s.Res)
		}
	}
}

func TestDishyHistory(t *testing.T) {
	n := testNode(t, ispnet.Wiltshire, 12)
	if _, err := n.RunIperfOnce("cubic", 2*time.Second, time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := n.RunUDPOnce(30e6, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	h, err := n.DishyHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Samples) != 2 {
		t.Fatalf("history samples = %d, want 2", len(h.Samples))
	}
	for _, s := range h.Samples {
		if s.PopPingLatencyMs <= 0 || s.DownlinkBps <= 0 {
			t.Errorf("bad sample %+v", s)
		}
	}
	// And over the wire.
	srv, addr, err := n.ServeDishy("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	got, err := dishy.NewClient(addr).GetHistory()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Samples) != 2 {
		t.Errorf("served history = %d samples", len(got.Samples))
	}
}
