// Package rpinode models the study's volunteer measurement nodes: a
// Raspberry Pi wired to the Starlink router (Figure 2), flashed with
// speedtest/iperf3/mtr tooling, running cron jobs — a speedtest every five
// minutes and periodic iperf runs against a VM in the closest Google Cloud
// region — and exposing the local dishy status API.
//
// Each node owns one simulation with two paths to its server: the full
// hop-by-hop path for traceroute work and a collapsed path (same end-to-end
// delay) for packet-level throughput tests.
package rpinode

import (
	"fmt"
	"time"

	"starlinkview/internal/dishy"
	"starlinkview/internal/ispnet"
	"starlinkview/internal/measure"
	"starlinkview/internal/netsim"
	"starlinkview/internal/obs"
	"starlinkview/internal/orbit"
	"starlinkview/internal/trace"
	"starlinkview/internal/weather"
)

// Config assembles a volunteer node.
type Config struct {
	City          ispnet.City
	Constellation *orbit.Constellation
	Epoch         time.Time
	// Server overrides the closest-Google-Cloud default.
	Server *ispnet.ServerSite
	// WithWeather adds the city's climatology to the bent pipe.
	WithWeather bool
	Policy      orbit.SelectionPolicy
	Seed        int64
	// Registry, when set, meters both of the node's paths (per-link packet
	// counters, bent-pipe handover/outage/loss series). Nil = unmetered.
	Registry *obs.Registry
	// Trace, when set, receives span events from both paths (handovers,
	// outages, loss windows, per-link drops). Nil = untraced.
	Trace *trace.Span
}

// IperfSample is one scheduled iperf measurement (Figures 6a/6b).
type IperfSample struct {
	At       time.Duration
	Wall     time.Time
	DownBps  float64
	UpBps    float64
	DownLoss float64 // TCP retransmit fraction, percent
}

// UDPSample is one scheduled UDP loss measurement (Figure 6c).
type UDPSample struct {
	At      time.Duration
	Wall    time.Time
	LossPct float64
	RateBps float64
}

// SpeedSample is one cron speedtest.
type SpeedSample struct {
	At   time.Duration
	Wall time.Time
	Res  measure.SpeedtestResult
}

// Node is a running volunteer measurement node.
type Node struct {
	City   ispnet.City
	Server ispnet.ServerSite
	Epoch  time.Time

	Sim   *netsim.Sim
	Full  *ispnet.Built // full hop-by-hop path
	Short *ispnet.Built // collapsed path for throughput tests

	iperf   []IperfSample
	udp     []UDPSample
	speeds  []SpeedSample
	history []dishy.HistorySample
}

// New builds the node and both of its paths.
func New(cfg Config) (*Node, error) {
	if cfg.Constellation == nil {
		return nil, fmt.Errorf("rpinode: constellation is required")
	}
	if cfg.Epoch.IsZero() {
		return nil, fmt.Errorf("rpinode: epoch is required")
	}
	server := ispnet.ClosestDC(cfg.City)
	if cfg.Server != nil {
		server = *cfg.Server
	}
	sim := netsim.NewSim(cfg.Seed)

	var wx *weather.Generator
	if cfg.WithWeather {
		g, err := weather.NewGenerator(cfg.City.Climatology, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		wx = g
	}
	base := ispnet.Config{
		Kind: ispnet.Starlink, City: cfg.City, Server: server,
		Constellation: cfg.Constellation, Policy: cfg.Policy,
		Weather: wx, Epoch: cfg.Epoch, Seed: cfg.Seed,
		Registry: cfg.Registry, Trace: cfg.Trace,
	}
	full, err := ispnet.Build(base)
	if err != nil {
		return nil, err
	}
	short := base
	short.Short = true
	short.Seed = cfg.Seed + 1000
	if cfg.WithWeather {
		// The short path needs its own generator (generators are stateful
		// and must be advanced monotonically by one consumer).
		g, err := weather.NewGenerator(cfg.City.Climatology, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		short.Weather = g
	}
	shortBuilt, err := ispnet.Build(short)
	if err != nil {
		return nil, err
	}
	return &Node{
		City:   cfg.City,
		Server: server,
		Epoch:  cfg.Epoch,
		Sim:    sim,
		Full:   full,
		Short:  shortBuilt,
	}, nil
}

// Wall converts node simulation time to wall-clock time.
func (n *Node) Wall(t time.Duration) time.Time { return n.Epoch.Add(t) }

// IperfSamples returns the collected iperf measurements.
func (n *Node) IperfSamples() []IperfSample { return n.iperf }

// UDPSamples returns the collected UDP loss measurements.
func (n *Node) UDPSamples() []UDPSample { return n.udp }

// SpeedSamples returns the collected speedtests.
func (n *Node) SpeedSamples() []SpeedSample { return n.speeds }

// recordHistory snapshots the terminal telemetry, as the dish's own ring
// buffer does.
func (n *Node) recordHistory() {
	st := n.Short.Pipe.StateAt(n.Sim.Now())
	n.history = append(n.history, dishy.HistorySample{
		AtUnix:           n.Wall(n.Sim.Now()).Unix(),
		PopPingLatencyMs: 2 * float64(st.OneWayDelay+st.JitterMean/2) / float64(time.Millisecond),
		PopPingDropRate:  st.LossProb,
		DownlinkBps:      st.DownCapacityBps,
		UplinkBps:        st.UpCapacityBps,
	})
}

// RunIperfOnce runs a download and an upload TCP iperf of the given
// durations on the short path and records the sample.
func (n *Node) RunIperfOnce(algo string, downDur, upDur time.Duration) (IperfSample, error) {
	at := n.Sim.Now()
	n.recordHistory()
	down, err := measure.IperfTCPReverse(n.Sim, n.Short.Path, algo, downDur)
	if err != nil {
		return IperfSample{}, err
	}
	up, err := measure.IperfTCP(n.Sim, n.Short.Path, algo, upDur)
	if err != nil {
		return IperfSample{}, err
	}
	s := IperfSample{
		At:       at,
		Wall:     n.Wall(at),
		DownBps:  down.ThroughputBps,
		UpBps:    up.ThroughputBps,
		DownLoss: down.LossPct,
	}
	n.iperf = append(n.iperf, s)
	return s, nil
}

// RunUDPOnce runs a downlink UDP blast at rateBps and records the loss.
func (n *Node) RunUDPOnce(rateBps float64, dur time.Duration) (UDPSample, error) {
	at := n.Sim.Now()
	n.recordHistory()
	res, err := measure.IperfUDP(n.Sim, n.Short.Path, rateBps, dur, true)
	if err != nil {
		return UDPSample{}, err
	}
	s := UDPSample{At: at, Wall: n.Wall(at), LossPct: res.LossPct, RateBps: rateBps}
	n.udp = append(n.udp, s)
	return s, nil
}

// RunSpeedtestOnce runs the Librespeed-style speedtest.
func (n *Node) RunSpeedtestOnce(opts measure.SpeedtestOptions) (SpeedSample, error) {
	at := n.Sim.Now()
	n.recordHistory()
	res, err := measure.Speedtest(n.Sim, n.Short.Path, opts)
	if err != nil {
		return SpeedSample{}, err
	}
	s := SpeedSample{At: at, Wall: n.Wall(at), Res: res}
	n.speeds = append(n.speeds, s)
	return s, nil
}

// Traceroute runs a traceroute on the full path.
func (n *Node) Traceroute(opts measure.TracerouteOptions) ([]measure.Hop, error) {
	return measure.Traceroute(n.Sim, n.Full.Path, opts)
}

// MaxMinQueueing estimates the queueing delay at the bent pipe (TTL 1) and
// across the whole path from the same traceroute sweeps, Table 2 style.
func (n *Node) MaxMinQueueing(runs, probes int) (wireless, whole measure.QueueingDelay, err error) {
	return measure.MaxMinBoth(n.Sim, n.Full.Path, runs, probes)
}

// Schedule configures the node's cron jobs.
type Schedule struct {
	// Total is how long the node runs.
	Total time.Duration
	// IperfEvery triggers RunIperfOnce (the paper's half-hourly cadence);
	// zero disables.
	IperfEvery time.Duration
	// IperfDur is the per-direction iperf duration.
	IperfDur time.Duration
	// UDPEvery triggers RunUDPOnce; zero disables.
	UDPEvery time.Duration
	// UDPRateBps and UDPDur parameterise the UDP blasts.
	UDPRateBps float64
	UDPDur     time.Duration
	// SpeedtestEvery triggers RunSpeedtestOnce (the paper's five-minute
	// cron job); zero disables.
	SpeedtestEvery time.Duration
	// SpeedtestPhase is the per-direction speedtest duration.
	SpeedtestPhase time.Duration
	// Algorithm for TCP tests (default cubic).
	Algorithm string
}

// RunSchedule executes the cron jobs over simulated time.
func (n *Node) RunSchedule(s Schedule) error {
	if s.Total <= 0 {
		return fmt.Errorf("rpinode: schedule needs a positive total duration")
	}
	if s.Algorithm == "" {
		s.Algorithm = "cubic"
	}
	if s.IperfDur == 0 {
		s.IperfDur = 5 * time.Second
	}
	if s.UDPDur == 0 {
		s.UDPDur = 5 * time.Second
	}
	if s.UDPRateBps == 0 {
		s.UDPRateBps = 100e6
	}
	if s.SpeedtestPhase == 0 {
		s.SpeedtestPhase = 4 * time.Second
	}

	start := n.Sim.Now()
	end := start + s.Total
	nextIperf := start
	nextUDP := start
	nextSpeed := start
	if s.IperfEvery <= 0 {
		nextIperf = end + 1
	}
	if s.UDPEvery <= 0 {
		nextUDP = end + 1
	}
	if s.SpeedtestEvery <= 0 {
		nextSpeed = end + 1
	}

	for {
		next := nextIperf
		if nextUDP < next {
			next = nextUDP
		}
		if nextSpeed < next {
			next = nextSpeed
		}
		if next > end {
			break
		}
		if n.Sim.Now() < next {
			n.Sim.RunUntil(next)
		}
		switch next {
		case nextIperf:
			if _, err := n.RunIperfOnce(s.Algorithm, s.IperfDur, s.IperfDur/2); err != nil {
				return err
			}
			nextIperf += s.IperfEvery
		case nextUDP:
			if _, err := n.RunUDPOnce(s.UDPRateBps, s.UDPDur); err != nil {
				return err
			}
			nextUDP += s.UDPEvery
		default:
			if _, err := n.RunSpeedtestOnce(measure.SpeedtestOptions{PhaseDuration: s.SpeedtestPhase}); err != nil {
				return err
			}
			nextSpeed += s.SpeedtestEvery
		}
	}
	n.Sim.RunUntil(end)
	return nil
}

// DishyStatus builds a dishy API status snapshot from the node's bent pipe.
func (n *Node) DishyStatus() (dishy.Status, error) {
	if n.Short.Pipe == nil {
		return dishy.Status{}, fmt.Errorf("rpinode: node has no bent pipe")
	}
	st := n.Short.Pipe.StateAt(n.Sim.Now())
	out := dishy.Status{
		UptimeS:                    int64(n.Sim.Now() / time.Second),
		PopPingLatencyMs:           2 * float64(st.OneWayDelay+st.JitterMean/2) / float64(time.Millisecond),
		PopPingDropRate:            st.LossProb,
		DownlinkThroughputBps:      st.DownCapacityBps,
		UplinkThroughputBps:        st.UpCapacityBps,
		SNR:                        9.5 - st.AttenuationDB,
		FractionObstructed:         0.001,
		CurrentlyObstructed:        st.Outage,
		SecondsToFirstNonemptySlot: float64(bentpipeSlotRemainder(n.Sim.Now())) / float64(time.Second),
	}
	if st.Serving != nil {
		out.ConnectedSatellite = st.Serving.Name
	}
	if st.AttenuationDB > 2 {
		out.Alerts = append(out.Alerts, "rain_fade")
	}
	if st.Outage {
		out.Alerts = append(out.Alerts, "searching")
	}
	return out, nil
}

// bentpipeSlotRemainder returns time until the next 15s reconfiguration.
func bentpipeSlotRemainder(t time.Duration) time.Duration {
	const slot = 15 * time.Second
	return slot - (t % slot)
}

// DishyHistory returns the telemetry snapshots recorded so far.
func (n *Node) DishyHistory() (dishy.History, error) {
	return dishy.History{Samples: append([]dishy.HistorySample(nil), n.history...)}, nil
}

// ServeDishy starts a dishy API server backed by this node and returns its
// address. The caller must Close the returned server.
func (n *Node) ServeDishy(addr string) (*dishy.Server, string, error) {
	srv, err := dishy.NewServer(dishy.StatusFunc(n.DishyStatus))
	if err != nil {
		return nil, "", err
	}
	srv.SetHistorySource(n.DishyHistory)
	bound, err := srv.Listen(addr)
	if err != nil {
		return nil, "", err
	}
	return srv, bound, nil
}
