package orbit

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"starlinkview/internal/geo"
	"starlinkview/internal/tle"
)

// engineEpoch matches the study epoch so test geometry resembles real runs.
var engineEpoch = time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC)

func mustShell(t testing.TB, cfg ShellConfig) *Constellation {
	t.Helper()
	c, err := GenerateShell(cfg)
	if err != nil {
		t.Fatalf("GenerateShell: %v", err)
	}
	return c
}

func reducedShell(t testing.TB) *Constellation {
	cfg := Shell1(engineEpoch)
	cfg.Planes = 24
	cfg.PhasingF = 13
	return mustShell(t, cfg)
}

// sameVisible asserts the pruned result matches the brute-force oracle
// exactly: same satellites, same order, look angles within tol.
func sameVisible(t *testing.T, ctx string, brute, pruned []Visible, tol float64) {
	t.Helper()
	if len(brute) != len(pruned) {
		bn := make([]string, 0, len(brute))
		for _, v := range brute {
			bn = append(bn, v.Sat.Name)
		}
		pn := make([]string, 0, len(pruned))
		for _, v := range pruned {
			pn = append(pn, v.Sat.Name)
		}
		t.Fatalf("%s: brute saw %d sats %v, pruned saw %d sats %v", ctx, len(brute), bn, len(pruned), pn)
	}
	for i := range brute {
		b, p := brute[i], pruned[i]
		if b.Sat != p.Sat {
			t.Fatalf("%s: rank %d: brute %s vs pruned %s", ctx, i, b.Sat.Name, p.Sat.Name)
		}
		if math.Abs(b.Look.ElevationDeg-p.Look.ElevationDeg) > tol ||
			math.Abs(b.Look.AzimuthDeg-p.Look.AzimuthDeg) > tol ||
			math.Abs(b.Look.RangeKm-p.Look.RangeKm) > tol {
			t.Fatalf("%s: %s look angles diverge: brute %+v pruned %+v", ctx, b.Sat.Name, b.Look, p.Look)
		}
	}
}

// TestVisibleFromMatchesBruteForce is the engine's core property test: over
// randomized observers and epochs on reduced and full shells, the pruned
// search returns exactly the brute-force result (ISSUE 5 requires names plus
// look angles within 1e-9; in practice the paths are bit-identical).
func TestVisibleFromMatchesBruteForce(t *testing.T) {
	shells := map[string]*Constellation{
		"reduced": reducedShell(t),
		"full":    mustShell(t, Shell1(engineEpoch)),
	}
	rng := rand.New(rand.NewSource(42))
	for name, c := range shells {
		trials := 60
		if name == "full" && testing.Short() {
			trials = 15
		}
		for i := 0; i < trials; i++ {
			obs := geo.LatLon{
				LatDeg: rng.Float64()*170 - 85,
				LonDeg: rng.Float64()*360 - 180,
				AltKm:  rng.Float64() * 2,
			}
			at := engineEpoch.Add(time.Duration(rng.Int63n(int64(90 * 24 * time.Hour))))
			ctx := fmt.Sprintf("%s shell, trial %d, obs %v at %v", name, i, obs, at)
			sameVisible(t, ctx, c.VisibleFromBrute(obs, at), c.VisibleFrom(obs, at), 1e-9)
		}
	}
}

// TestVisibleFromMatchesBruteForceCatalogue runs the same property on a
// constellation rebuilt from serialized TLEs: quantized elements and
// heterogeneous epochs must still index correctly.
func TestVisibleFromMatchesBruteForceCatalogue(t *testing.T) {
	seedShell := reducedShell(t)
	// Round-trip through the TLE text format to perturb every element the
	// way a real catalogue would.
	var rebuilt tle.Catalogue
	for _, el := range seedShell.Catalogue() {
		l1, l2 := el.Format()
		parsed, err := tle.Parse(el.Name, l1, l2)
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		rebuilt = append(rebuilt, parsed)
	}
	c, err := FromCatalogue(rebuilt, 25)
	if err != nil {
		t.Fatalf("FromCatalogue: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		obs := geo.LatLon{LatDeg: rng.Float64()*170 - 85, LonDeg: rng.Float64()*360 - 180}
		at := engineEpoch.Add(time.Duration(rng.Int63n(int64(30 * 24 * time.Hour))))
		ctx := fmt.Sprintf("catalogue trial %d, obs %v at %v", i, obs, at)
		sameVisible(t, ctx, c.VisibleFromBrute(obs, at), c.VisibleFrom(obs, at), 1e-9)
	}
}

// TestVisibleFromHighEccentricitySats exercises the loose (non-indexable)
// path: high-eccentricity satellites must always be exact-tested.
func TestVisibleFromHighEccentricitySats(t *testing.T) {
	c := reducedShell(t)
	for i := 0; i < 6; i++ {
		el := tle.TLE{
			Name:            fmt.Sprintf("MOLNIYA-%d", i),
			SatNum:          90000 + i,
			Epoch:           engineEpoch,
			InclinationDeg:  63.4,
			RAANDeg:         float64(i) * 60,
			Eccentricity:    0.3,
			ArgPerigeeDeg:   270,
			MeanAnomalyDeg:  float64(i) * 55,
			MeanMotionRevPD: 13.5, // ~1050 km mean altitude, visible from LEO masks
		}
		s, err := FromTLE(el)
		if err != nil {
			t.Fatalf("FromTLE: %v", err)
		}
		c.Sats = append(c.Sats, s)
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 40; i++ {
		obs := geo.LatLon{LatDeg: rng.Float64()*170 - 85, LonDeg: rng.Float64()*360 - 180}
		at := engineEpoch.Add(time.Duration(rng.Int63n(int64(10 * 24 * time.Hour))))
		ctx := fmt.Sprintf("loose trial %d, obs %v at %v", i, obs, at)
		sameVisible(t, ctx, c.VisibleFromBrute(obs, at), c.VisibleFrom(obs, at), 1e-9)
	}
}

// TestVisibleFromAfterMaskChange covers engine rebuild on MinElevationDeg
// mutation between queries (TestServingNoneVisible relies on this).
func TestVisibleFromAfterMaskChange(t *testing.T) {
	c := reducedShell(t)
	obs := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	at := engineEpoch.Add(12 * time.Hour)
	for _, mask := range []float64{25, 89.9, 5, -10, 40} {
		c.MinElevationDeg = mask
		ctx := fmt.Sprintf("mask %v", mask)
		sameVisible(t, ctx, c.VisibleFromBrute(obs, at), c.VisibleFrom(obs, at), 1e-9)
	}
}

// TestSatPositionECEFMatchesDirect asserts the cached per-satellite lookup
// is bit-identical to direct propagation, hit or miss.
func TestSatPositionECEFMatchesDirect(t *testing.T) {
	c := reducedShell(t)
	obs := geo.LatLon{LatDeg: 47.6, LonDeg: -122.3}
	at := engineEpoch.Add(3 * time.Hour)
	c.VisibleFrom(obs, at) // warm the cache slot for `at`
	for _, s := range c.Sats[:50] {
		want := s.PositionECEF(at)
		if got := c.SatPositionECEF(s, at); got != want {
			t.Fatalf("%s: cached %+v != direct %+v", s.Name, got, want)
		}
		// Second call is a guaranteed hit; must still be identical.
		if got := c.SatPositionECEF(s, at); got != want {
			t.Fatalf("%s: hit path %+v != direct %+v", s.Name, got, want)
		}
		wantLook := s.Look(obs, at)
		if got := c.SatLook(s, obs, at); got != wantLook {
			t.Fatalf("%s: SatLook %+v != Look %+v", s.Name, got, wantLook)
		}
	}
	// Foreign satellite (not in the constellation) falls back to direct.
	foreign, err := FromTLE(c.Sats[0].Elems)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := c.SatPositionECEF(foreign, at), foreign.PositionECEF(at); got != want {
		t.Fatalf("foreign sat: %+v != %+v", got, want)
	}
}

// TestVisibleFromAppendZeroAllocs pins the ISSUE 5 acceptance criterion: the
// pruned visibility hot path (and ServingInto on top of it) performs zero
// heap allocations once buffers are warm.
func TestVisibleFromAppendZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under -race; alloc counts are meaningless")
	}
	c := mustShell(t, Shell1(engineEpoch))
	obs := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	buf := make([]Visible, 0, 64)
	times := make([]time.Time, 16)
	for i := range times {
		times[i] = engineEpoch.Add(time.Duration(i) * 17 * time.Second)
	}
	// Warm engine, cache slots, scratch pool, and output buffer.
	for i := 0; i < 4; i++ {
		for _, at := range times {
			buf = c.VisibleFromAppend(obs, at, buf[:0])
		}
	}
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		buf = c.VisibleFromAppend(obs, times[k%len(times)], buf[:0])
		k++
	})
	if allocs != 0 {
		t.Fatalf("VisibleFromAppend: %v allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		c.ServingInto(obs, times[k%len(times)], HighestElevation, &buf)
		k++
	})
	if allocs != 0 {
		t.Fatalf("ServingInto: %v allocs/op, want 0", allocs)
	}
}

// TestVisibleFromConcurrent drives concurrent queries (shared engine, shared
// cache) under the race detector and checks results stay correct.
func TestVisibleFromConcurrent(t *testing.T) {
	c := reducedShell(t)
	obs := []geo.LatLon{
		{LatDeg: 51.5, LonDeg: -0.12},
		{LatDeg: 47.6, LonDeg: -122.3},
		{LatDeg: -33.8, LonDeg: 151.2},
		{LatDeg: 1.35, LonDeg: 103.8},
	}
	want := make(map[int][]Visible)
	for g := 0; g < 4; g++ {
		want[g] = c.VisibleFromBrute(obs[g], engineEpoch.Add(time.Duration(g)*time.Minute))
	}
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(g int) {
			at := engineEpoch.Add(time.Duration(g) * time.Minute)
			for i := 0; i < 200; i++ {
				got := c.VisibleFrom(obs[g], at)
				if len(got) != len(want[g]) {
					done <- fmt.Errorf("goroutine %d: %d visible, want %d", g, len(got), len(want[g]))
					return
				}
				for j := range got {
					if got[j].Sat != want[g][j].Sat {
						done <- fmt.Errorf("goroutine %d: rank %d mismatch", g, j)
						return
					}
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
