//go:build !race

package orbit

const raceEnabled = false
