//go:build race

package orbit

// raceEnabled reports whether the race detector is on. Under -race,
// sync.Pool drops items at random to expose reuse races, so allocation
// counts on the pooled hot path are not meaningful.
const raceEnabled = true
