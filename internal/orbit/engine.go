// Pruned visibility search and shared propagation cache for Constellation.
//
// The brute-force scan propagates all N satellites per query even though,
// from any ground site, only satellites whose sub-satellite point lies within
// a small Earth-central angle of the observer can clear the elevation mask.
// For shell-1 geometry (550 km, 25 degree mask) that angle is under 10
// degrees, so ~97% of the Kepler solves are provably wasted work — the same
// spatial-pruning insight Hypatia-style constellation simulators use.
//
// The engine exploits the constellation's structure instead of scanning:
//
//   - Geometry bound. In the Earth-centre/observer/satellite triangle the
//     angle at the observer is 90deg+e, so a satellite at elevation e and
//     geocentric radius rs seen from an observer at radius ro subtends an
//     Earth-central angle lambda = acos((ro/rs)*cos e) - e. Maximising over
//     the mask (smallest ro, largest rs, e = MinElevationDeg) gives a hard
//     cap lambdaMax on the central angle of any visible satellite; margins
//     cover the geodetic-vs-geocentric vertical deflection (<= 0.19 deg)
//     and numeric slop.
//
//   - Plane index. Satellites are grouped into orbital planes (identical
//     inclination, RAAN trajectory, and in-plane angular rate, matched by
//     float bit-equality so generated Walker shells collapse to their true
//     planes). Within a plane, position along the orbit is the argument of
//     latitude u = argp + nu, which to within the equation of centre
//     (|nu - M| <= 2e + O(e^2), covered by a 2.5e margin) advances linearly:
//     u(t) ~= uRef + (n + argpDot)*(t - tref). Each plane stores its
//     satellites as a ring sorted by uRef.
//
//   - Window search. For a unit observer direction o (ECI) the direction of
//     a satellite at argument of latitude u is p*cos u + q*sin u for the
//     plane basis p = (cosO, sinO, 0), q = (-sinO*cosi, cosO*cosi, sini), so
//     cos(angle to observer) = a*cos u + b*sin u = R*cos(u - psi) with
//     a = o.p, b = o.q. If R < cos lambdaMax the whole plane is out of range;
//     otherwise only satellites with |u - psi| <= acos(cos lambdaMax / R)
//     (plus margins) can be visible — a contiguous arc of the ring found by
//     binary search. The exact look-angle test remains the final filter, so
//     pruning only ever skips satellites that cannot pass it and results are
//     bit-identical to the brute-force scan.
//
//   - Position cache. Propagated ECEF positions are memoised per timestamp
//     in a small set of SoA slots keyed by t.UnixNano(), so co-located
//     observers queried at the same wall time (and bentpipe's repeated
//     serving-satellite lookups within one tick) never re-propagate. Cached
//     values are the exact float64s PositionECEF returns.
//
// The hot path allocates nothing: candidate lists and position buffers come
// from a sync.Pool scratch, sorts are hand-written insertion sorts, and
// callers supply (or reuse) the output slice via VisibleFromAppend.
package orbit

import (
	"math"
	"sort"
	"sync"
	"time"

	"starlinkview/internal/geo"
)

const (
	// posCacheSlots bounds how many distinct timestamps keep cached
	// positions; simulation ticks touch 1-2 timestamps each, so a handful
	// of slots covers the reuse window without holding stale epochs.
	posCacheSlots = 4

	// looseEccMax is the eccentricity above which the linear argument-of-
	// latitude model is too sloppy to index; such satellites are always
	// exact-tested.
	looseEccMax = 0.02

	// minIndexSats is the constellation size below which pruning cannot pay
	// for its own plane-window arithmetic.
	minIndexSats = 8
)

// ringSat is one satellite's slot in a plane ring.
type ringSat struct {
	u   float64 // argument of latitude at the engine's reference time
	idx int32   // index into Constellation.Sats
}

// planeIdx is one orbital plane: shared orientation plus its satellites
// sorted by argument of latitude.
type planeIdx struct {
	raanRef, raanDot float64 // RAAN at tref and its J2 drift rate
	cosInc, sinInc   float64
	uRate            float64 // d(argp+M)/dt = n + argpDot
	uMargin          float64 // equation-of-centre + numeric slack, radians
	ring             []ringSat
}

// engine is an immutable index over one Constellation snapshot.
type engine struct {
	nsats             int
	minElev           float64
	firstSat, lastSat *Satellite

	tref   time.Time
	usable bool    // false: fall back to an exact (but cached) full scan
	cosLam float64 // cos of the max Earth-central angle of a visible sat

	planes []planeIdx
	loose  []int32 // high-eccentricity satellites, always exact-tested
	satIdx map[*Satellite]int32

	cache posCache
}

// fresh reports whether the engine still matches the constellation it was
// built from. Sats mutation is detected heuristically (length plus first and
// last pointers); in-place element swaps are not supported concurrently with
// queries.
func (e *engine) fresh(c *Constellation) bool {
	if e.nsats != len(c.Sats) || e.minElev != c.MinElevationDeg {
		return false
	}
	return e.nsats == 0 || (e.firstSat == c.Sats[0] && e.lastSat == c.Sats[e.nsats-1])
}

// engineFor returns the current engine, building (or rebuilding) it if the
// constellation changed since the last query.
func (c *Constellation) engineFor() *engine {
	if e := c.eng.Load(); e != nil && e.fresh(c) {
		return e
	}
	c.buildMu.Lock()
	defer c.buildMu.Unlock()
	if e := c.eng.Load(); e != nil && e.fresh(c) {
		return e
	}
	e := buildEngine(c)
	c.eng.Store(e)
	return e
}

func mod2pi(x float64) float64 {
	x = math.Mod(x, 2*math.Pi)
	if x < 0 {
		x += 2 * math.Pi
	}
	return x
}

func buildEngine(c *Constellation) *engine {
	e := &engine{nsats: len(c.Sats), minElev: c.MinElevationDeg}
	e.satIdx = make(map[*Satellite]int32, e.nsats)
	for i, s := range c.Sats {
		e.satIdx[s] = int32(i)
	}
	e.cache.init(e.nsats)
	if e.nsats == 0 {
		return e
	}
	e.firstSat = c.Sats[0]
	e.lastSat = c.Sats[e.nsats-1]
	e.tref = c.Sats[0].Elems.Epoch
	if e.nsats < minIndexSats {
		return e
	}

	// Visibility cone: lambdaMax maximised over observer radius (polar
	// radius less slack for below-ellipsoid sites), satellite radius (max
	// apogee over the set) and the mask (relaxed 0.2 deg for the
	// geodetic-vs-geocentric vertical deflection), plus 1 deg base margin.
	maxApogee := 0.0
	for _, s := range c.Sats {
		if ap := s.semiMajorKm * (1 + s.Elems.Eccentricity); ap > maxApogee {
			maxApogee = ap
		}
	}
	rObs := geo.EquatorialRadiusKm*(1-geo.Flattening) - 5
	eMask := geo.Deg2Rad(c.MinElevationDeg - 0.2)
	x := rObs / maxApogee * math.Cos(eMask)
	x = math.Max(-1, math.Min(1, x))
	lam := math.Acos(x) - eMask + geo.Deg2Rad(1.0)
	e.cosLam = math.Cos(lam)
	if !(e.cosLam > 0.05) {
		// Cone covers most of the sky (tiny or negative mask): pruning
		// cannot win, keep the exact cached scan.
		return e
	}

	// Group satellites into planes by bit-equality of their orientation
	// trajectory; float equality is exact for generated shells (identical
	// inputs take identical code paths) and heterogeneous catalogues just
	// split into more, smaller planes.
	type planeKey struct {
		cosInc, sinInc, raanDot, uRate, raanRef float64
	}
	byKey := make(map[planeKey]int)
	for i, s := range c.Sats {
		if s.Elems.Eccentricity > looseEccMax {
			e.loose = append(e.loose, int32(i))
			continue
		}
		dt := e.tref.Sub(s.Elems.Epoch).Seconds()
		uRate := s.meanMotion + s.argpDot
		raanRef := mod2pi(s.raanRad0 + s.raanDot*dt)
		k := planeKey{s.cosInc, s.sinInc, s.raanDot, uRate, raanRef}
		pi, ok := byKey[k]
		if !ok {
			pi = len(e.planes)
			byKey[k] = pi
			e.planes = append(e.planes, planeIdx{
				raanRef: raanRef, raanDot: s.raanDot,
				cosInc: s.cosInc, sinInc: s.sinInc,
				uRate: uRate,
			})
		}
		pl := &e.planes[pi]
		pl.ring = append(pl.ring, ringSat{
			u:   mod2pi(s.meanAnomRad0 + s.argpRad0 + uRate*dt),
			idx: int32(i),
		})
		if m := 2.5*s.Elems.Eccentricity + 2e-3; m > pl.uMargin {
			pl.uMargin = m
		}
	}
	for i := range e.planes {
		ring := e.planes[i].ring
		sort.Slice(ring, func(a, b int) bool { return ring[a].u < ring[b].u })
	}
	e.usable = true
	return e
}

// scratch holds the per-query buffers recycled through scratchPool.
type scratch struct {
	cand       []int32
	got        []bool
	px, py, pz []float64
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func growB(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// appendWindow appends the indices of ring satellites whose reference
// argument of latitude lies within halfW of center (cyclically). The ring is
// sorted ascending, so the window is one contiguous cyclic arc.
func appendWindow(dst []int32, ring []ringSat, center, halfW float64) []int32 {
	if !(halfW < math.Pi) { // also catches NaN: take everything
		for _, rs := range ring {
			dst = append(dst, rs.idx)
		}
		return dst
	}
	lo := mod2pi(center - halfW)
	span := 2 * halfW
	// First ring index with u >= lo (hand-rolled to keep the path
	// allocation-free regardless of closure escape analysis).
	i, j := 0, len(ring)
	for i < j {
		h := int(uint(i+j) >> 1)
		if ring[h].u >= lo {
			j = h
		} else {
			i = h + 1
		}
	}
	if i == len(ring) {
		i = 0
	}
	// Walk the ring from there; the cyclic offset from lo is monotone, so
	// the first satellite past the window ends the arc.
	for k := 0; k < len(ring); k++ {
		j := i + k
		if j >= len(ring) {
			j -= len(ring)
		}
		du := ring[j].u - lo
		if du < 0 {
			du += 2 * math.Pi
		}
		if du > span {
			break
		}
		dst = append(dst, ring[j].idx)
	}
	return dst
}

func insertionSortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// sortVisibleDesc sorts by descending elevation. Insertion sort: the visible
// set is tiny (tens at most) and the closure-free code keeps the query path
// at zero allocations.
func sortVisibleDesc(vs []Visible) {
	for i := 1; i < len(vs); i++ {
		v := vs[i]
		j := i - 1
		for j >= 0 && vs[j].Look.ElevationDeg < v.Look.ElevationDeg {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = v
	}
}

// VisibleFromAppend appends the satellites above the constellation's minimum
// elevation at time t to out (which may be nil or a recycled buffer passed as
// buf[:0]) and returns the extended slice. The appended region is sorted by
// descending elevation. With a warm reused buffer the call performs no heap
// allocation.
func (c *Constellation) VisibleFromAppend(obs geo.LatLon, t time.Time, out []Visible) []Visible {
	if c.BruteForce {
		return c.bruteAppend(obs, t, out)
	}
	e := c.engineFor()
	obsv := geo.NewObserver(obs)
	return e.query(c, &obsv, t, out)
}

// bruteAppend is the append-form of VisibleFromBrute, used when BruteForce
// is set so benchmarks exercise the genuine pre-engine cost model.
func (c *Constellation) bruteAppend(obs geo.LatLon, t time.Time, out []Visible) []Visible {
	n0 := len(out)
	for _, s := range c.Sats {
		la := s.Look(obs, t)
		if la.ElevationDeg >= c.MinElevationDeg {
			out = append(out, Visible{Sat: s, Look: la})
		}
	}
	app := out[n0:]
	sort.Slice(app, func(i, j int) bool {
		return app[i].Look.ElevationDeg > app[j].Look.ElevationDeg
	})
	return out
}

// query runs one pruned (or, for unusable indexes, exact-but-cached)
// visibility scan.
func (e *engine) query(c *Constellation, obsv *geo.Observer, t time.Time, out []Visible) []Visible {
	sc := scratchPool.Get().(*scratch)

	theta := gmstRad(t)
	// math.Cos/Sin rather than Sincos: PositionECEF uses the separate
	// calls, and cached positions must be bit-identical to it.
	cosT, sinT := math.Cos(theta), math.Sin(theta)

	cand := sc.cand[:0]
	if !e.usable {
		for i := 0; i < e.nsats; i++ {
			cand = append(cand, int32(i))
		}
	} else {
		// Observer geocentric unit direction, rotated ECEF -> ECI.
		p := obsv.Position()
		n := p.Norm()
		if n == 0 {
			n = 1
		}
		ox, oy, oz := p.X/n, p.Y/n, p.Z/n
		xe := cosT*ox - sinT*oy
		ye := sinT*ox + cosT*oy
		ze := oz
		dt := t.Sub(e.tref).Seconds()
		cosLam2 := e.cosLam * e.cosLam
		for pi := range e.planes {
			pl := &e.planes[pi]
			sinO, cosO := math.Sincos(pl.raanRef + pl.raanDot*dt)
			a := xe*cosO + ye*sinO
			b := pl.cosInc*(ye*cosO-xe*sinO) + pl.sinInc*ze
			r2 := a*a + b*b
			if r2 <= cosLam2 {
				continue // plane never enters the visibility cone
			}
			r := math.Sqrt(r2)
			halfW := math.Acos(e.cosLam/r) + pl.uMargin
			center := math.Atan2(b, a) - pl.uRate*dt
			cand = appendWindow(cand, pl.ring, center, halfW)
		}
		cand = append(cand, e.loose...)
		// Ascending satellite index so the pre-sort candidate order matches
		// the brute-force scan exactly (ties, if any, resolve identically).
		insertionSortInt32(cand)
	}
	sc.cand = cand

	nc := len(cand)
	sc.px = growF(sc.px, nc)
	sc.py = growF(sc.py, nc)
	sc.pz = growF(sc.pz, nc)
	sc.got = growB(sc.got, nc)
	key := t.UnixNano()
	e.cache.fill(key, cand, sc.px, sc.py, sc.pz, sc.got)
	miss := false
	for i, hit := range sc.got {
		if hit {
			continue
		}
		miss = true
		eci := c.Sats[cand[i]].PositionECI(t)
		sc.px[i] = cosT*eci.X + sinT*eci.Y
		sc.py[i] = -sinT*eci.X + cosT*eci.Y
		sc.pz[i] = eci.Z
	}
	if miss {
		e.cache.store(key, cand, sc.px, sc.py, sc.pz)
	}

	n0 := len(out)
	for i := 0; i < nc; i++ {
		la := obsv.Look(geo.ECEF{X: sc.px[i], Y: sc.py[i], Z: sc.pz[i]})
		if la.ElevationDeg >= c.MinElevationDeg {
			out = append(out, Visible{Sat: c.Sats[cand[i]], Look: la})
		}
	}
	sortVisibleDesc(out[n0:])

	scratchPool.Put(sc)
	return out
}

// SatPositionECEF returns s's position at t like s.PositionECEF, but through
// the constellation's shared cache, so repeated lookups of the same
// timestamp (serving-satellite refreshes, co-timed observers) propagate only
// once. Results are bit-identical to s.PositionECEF(t).
func (c *Constellation) SatPositionECEF(s *Satellite, t time.Time) geo.ECEF {
	if c.BruteForce {
		return s.PositionECEF(t)
	}
	e := c.engineFor()
	i, ok := e.satIdx[s]
	if !ok {
		return s.PositionECEF(t)
	}
	key := t.UnixNano()
	if p, ok := e.cache.get1(key, i); ok {
		return p
	}
	p := s.PositionECEF(t)
	e.cache.put1(key, i, p)
	return p
}

// SatLook is s.Look through the shared position cache.
func (c *Constellation) SatLook(s *Satellite, obs geo.LatLon, t time.Time) geo.LookAngles {
	return geo.Look(obs, c.SatPositionECEF(s, t))
}

// posCache memoises propagated ECEF positions per timestamp. Slots store
// positions as structure-of-arrays keyed by satellite index; slot keys are
// t.UnixNano(), so tick-aligned query times dedupe naturally.
type posCache struct {
	mu    sync.Mutex
	nsats int
	clock uint64
	slots [posCacheSlots]posSlot
}

type posSlot struct {
	used    bool
	key     int64
	last    uint64 // LRU tick
	have    []bool
	x, y, z []float64
}

func (pc *posCache) init(nsats int) { pc.nsats = nsats }

// find returns the slot holding key, or nil. Caller holds mu.
func (pc *posCache) find(key int64) *posSlot {
	for i := range pc.slots {
		if sl := &pc.slots[i]; sl.used && sl.key == key {
			return sl
		}
	}
	return nil
}

// take returns the slot for key, evicting the least-recently-used slot if
// the key is new. Caller holds mu.
func (pc *posCache) take(key int64) *posSlot {
	if sl := pc.find(key); sl != nil {
		return sl
	}
	victim := &pc.slots[0]
	for i := range pc.slots {
		sl := &pc.slots[i]
		if !sl.used {
			victim = sl
			break
		}
		if sl.last < victim.last {
			victim = sl
		}
	}
	if victim.have == nil {
		victim.have = make([]bool, pc.nsats)
		victim.x = make([]float64, pc.nsats)
		victim.y = make([]float64, pc.nsats)
		victim.z = make([]float64, pc.nsats)
	} else {
		clear(victim.have)
	}
	victim.used = true
	victim.key = key
	return victim
}

// fill copies cached positions for cand into the parallel out arrays,
// setting got[i] per candidate.
func (pc *posCache) fill(key int64, cand []int32, x, y, z []float64, got []bool) {
	pc.mu.Lock()
	pc.clock++
	sl := pc.find(key)
	if sl == nil {
		pc.mu.Unlock()
		for i := range got {
			got[i] = false
		}
		return
	}
	sl.last = pc.clock
	for i, ci := range cand {
		if sl.have[ci] {
			x[i], y[i], z[i] = sl.x[ci], sl.y[ci], sl.z[ci]
			got[i] = true
		} else {
			got[i] = false
		}
	}
	pc.mu.Unlock()
}

// store writes the candidates' positions into the slot for key.
func (pc *posCache) store(key int64, cand []int32, x, y, z []float64) {
	pc.mu.Lock()
	pc.clock++
	sl := pc.take(key)
	sl.last = pc.clock
	for i, ci := range cand {
		sl.x[ci], sl.y[ci], sl.z[ci] = x[i], y[i], z[i]
		sl.have[ci] = true
	}
	pc.mu.Unlock()
}

func (pc *posCache) get1(key int64, i int32) (geo.ECEF, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.clock++
	sl := pc.find(key)
	if sl == nil || !sl.have[i] {
		return geo.ECEF{}, false
	}
	sl.last = pc.clock
	return geo.ECEF{X: sl.x[i], Y: sl.y[i], Z: sl.z[i]}, true
}

func (pc *posCache) put1(key int64, i int32, p geo.ECEF) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.clock++
	sl := pc.take(key)
	sl.last = pc.clock
	sl.x[i], sl.y[i], sl.z[i] = p.X, p.Y, p.Z
	sl.have[i] = true
}
