// Package orbit propagates Earth satellites from their two-line element sets
// and generates the synthetic Starlink shell-1 constellation used throughout
// the reproduction.
//
// The propagator is a first-order Keplerian model with J2 secular precession
// of the ascending node and argument of perigee. This is far simpler than a
// full SGP4 implementation but is accurate to a few kilometres over the
// minutes-to-hours horizons the study needs (serving-satellite selection,
// handover cadence, Figure 7's line-of-sight windows), where the dominant
// effect is simply the satellite's ~7.6 km/s ground-track motion.
package orbit

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"starlinkview/internal/geo"
	"starlinkview/internal/tle"
)

// Physical constants.
const (
	// MuEarth is the Earth's gravitational parameter in km^3/s^2.
	MuEarth = 398600.4418
	// J2 is the Earth's second zonal harmonic.
	J2 = 1.08262668e-3
	// EarthRotationRadPerSec is the sidereal rotation rate.
	EarthRotationRadPerSec = 7.2921158553e-5
)

// Satellite is a propagatable Earth satellite.
type Satellite struct {
	Name  string
	Elems tle.TLE

	// Derived at construction.
	semiMajorKm float64
	meanMotion  float64 // rad/s
	raanDot     float64 // rad/s, J2 secular
	argpDot     float64 // rad/s, J2 secular

	// Constant trigonometry hoisted out of PositionECI. Each value is the
	// exact float64 the original per-call expressions produced, so caching
	// them keeps propagation bit-identical.
	meanAnomRad0   float64 // Deg2Rad(MeanAnomalyDeg)
	argpRad0       float64 // Deg2Rad(ArgPerigeeDeg)
	raanRad0       float64 // Deg2Rad(RAANDeg)
	cosInc, sinInc float64
	sqrt1pe        float64 // sqrt(1+e)
	sqrt1me        float64 // sqrt(1-e)
}

// FromTLE builds a Satellite from a parsed element set.
func FromTLE(t tle.TLE) (*Satellite, error) {
	if t.MeanMotionRevPD <= 0 {
		return nil, fmt.Errorf("orbit: satellite %q has non-positive mean motion %v", t.Name, t.MeanMotionRevPD)
	}
	if t.Eccentricity < 0 || t.Eccentricity >= 1 {
		return nil, fmt.Errorf("orbit: satellite %q has eccentricity %v outside [0,1)", t.Name, t.Eccentricity)
	}
	n := t.MeanMotionRevPD * 2 * math.Pi / 86400 // rad/s
	a := math.Cbrt(MuEarth / (n * n))

	inc := geo.Deg2Rad(t.InclinationDeg)
	p := a * (1 - t.Eccentricity*t.Eccentricity)
	factor := -1.5 * J2 * (geo.EquatorialRadiusKm / p) * (geo.EquatorialRadiusKm / p) * n

	return &Satellite{
		Name:        t.Name,
		Elems:       t,
		semiMajorKm: a,
		meanMotion:  n,
		raanDot:     factor * math.Cos(inc),
		argpDot:     -factor * (2 - 2.5*math.Sin(inc)*math.Sin(inc)),

		meanAnomRad0: geo.Deg2Rad(t.MeanAnomalyDeg),
		argpRad0:     geo.Deg2Rad(t.ArgPerigeeDeg),
		raanRad0:     geo.Deg2Rad(t.RAANDeg),
		cosInc:       math.Cos(inc),
		sinInc:       math.Sin(inc),
		sqrt1pe:      math.Sqrt(1 + t.Eccentricity),
		sqrt1me:      math.Sqrt(1 - t.Eccentricity),
	}, nil
}

// AltitudeKm returns the mean orbital altitude above the equatorial radius.
func (s *Satellite) AltitudeKm() float64 { return s.semiMajorKm - geo.EquatorialRadiusKm }

// PeriodSec returns the orbital period in seconds.
func (s *Satellite) PeriodSec() float64 { return 2 * math.Pi / s.meanMotion }

// solveKepler solves E - e*sin(E) = M for the eccentric anomaly by Newton
// iteration. Converges in a handful of steps for LEO eccentricities.
func solveKepler(m, e float64) float64 {
	em := math.Mod(m, 2*math.Pi)
	E := em
	if e > 0.8 {
		E = math.Pi
	}
	for i := 0; i < 12; i++ {
		d := (E - e*math.Sin(E) - em) / (1 - e*math.Cos(E))
		E -= d
		if math.Abs(d) < 1e-12 {
			break
		}
	}
	return E
}

// PositionECI returns the satellite position at time t in an Earth-centred
// inertial frame (km).
func (s *Satellite) PositionECI(t time.Time) geo.ECEF {
	dt := t.Sub(s.Elems.Epoch).Seconds()
	e := s.Elems.Eccentricity

	m := s.meanAnomRad0 + s.meanMotion*dt
	E := solveKepler(m, e)

	// True anomaly and orbital radius.
	nu := 2 * math.Atan2(s.sqrt1pe*math.Sin(E/2), s.sqrt1me*math.Cos(E/2))
	r := s.semiMajorKm * (1 - e*math.Cos(E))

	// Perifocal coordinates.
	xp := r * math.Cos(nu)
	yp := r * math.Sin(nu)

	// Rotate perifocal -> ECI by argument of perigee, inclination, RAAN
	// (with J2 secular drift applied to RAAN and argp).
	argp := s.argpRad0 + s.argpDot*dt
	raan := s.raanRad0 + s.raanDot*dt

	cosO, sinO := math.Cos(raan), math.Sin(raan)
	cosw, sinw := math.Cos(argp), math.Sin(argp)
	cosi, sini := s.cosInc, s.sinInc

	x := (cosO*cosw-sinO*sinw*cosi)*xp + (-cosO*sinw-sinO*cosw*cosi)*yp
	y := (sinO*cosw+cosO*sinw*cosi)*xp + (-sinO*sinw+cosO*cosw*cosi)*yp
	z := (sinw*sini)*xp + (cosw*sini)*yp
	return geo.ECEF{X: x, Y: y, Z: z}
}

// gmstRad returns the Greenwich mean sidereal time at t, in radians.
func gmstRad(t time.Time) float64 {
	// Julian date from Unix time.
	jd := float64(t.UnixNano())/86400e9 + 2440587.5
	d := jd - 2451545.0
	// IAU 1982 approximation, adequate for link geometry.
	gmstDeg := 280.46061837 + 360.98564736629*d
	gmstDeg = math.Mod(gmstDeg, 360)
	if gmstDeg < 0 {
		gmstDeg += 360
	}
	return geo.Deg2Rad(gmstDeg)
}

// PositionECEF returns the satellite position at time t in Earth-centred
// Earth-fixed coordinates (km), i.e. rotating with the Earth.
func (s *Satellite) PositionECEF(t time.Time) geo.ECEF {
	eci := s.PositionECI(t)
	theta := gmstRad(t)
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	return geo.ECEF{
		X: cosT*eci.X + sinT*eci.Y,
		Y: -sinT*eci.X + cosT*eci.Y,
		Z: eci.Z,
	}
}

// Look returns the look angles from the observer to the satellite at time t.
func (s *Satellite) Look(obs geo.LatLon, t time.Time) geo.LookAngles {
	return geo.Look(obs, s.PositionECEF(t))
}

// Constellation is a set of satellites with shared visibility parameters.
//
// Visibility queries run through a pruned search engine (see engine.go) that
// indexes satellites by orbital plane and argument of latitude and caches
// propagated positions per timestamp. The engine is built lazily on first
// query and rebuilt if Sats or MinElevationDeg change between queries;
// mutating those fields concurrently with queries is not supported (every
// in-tree caller treats a built constellation as immutable). Concurrent
// queries are safe.
type Constellation struct {
	Sats []*Satellite

	// MinElevationDeg is the terminal's minimum usable elevation angle;
	// Starlink shell-1 operates at 25 degrees per the FCC filings the paper
	// cites.
	MinElevationDeg float64

	// BruteForce disables the pruned index and position cache, forcing every
	// query down the original exhaustive scan. It exists so benchmarks can
	// measure the engine against the pre-engine baseline in the same binary.
	BruteForce bool

	eng     atomic.Pointer[engine]
	buildMu sync.Mutex
}

// ShellConfig describes one orbital shell of a Walker-delta constellation.
type ShellConfig struct {
	Name           string  // name prefix for generated satellites
	AltitudeKm     float64 // orbital altitude
	InclinationDeg float64
	Planes         int // number of orbital planes
	SatsPerPlane   int
	PhasingF       int       // Walker phasing parameter (0..Planes-1)
	Epoch          time.Time // element epoch
	FirstSatNum    int       // catalogue number of the first satellite
}

// Shell1 returns the configuration of Starlink's first (and in 2022,
// dominant) shell: 550 km, 53 degrees, 72 planes of 22 satellites.
func Shell1(epoch time.Time) ShellConfig {
	return ShellConfig{
		Name:           "STARLINK",
		AltitudeKm:     550,
		InclinationDeg: 53,
		Planes:         72,
		SatsPerPlane:   22,
		PhasingF:       39,
		Epoch:          epoch,
		FirstSatNum:    44000,
	}
}

// GenerateShell builds a Walker-delta shell as a Constellation with TLE-backed
// satellites, so the same objects can be serialised to a CelesTrak-style file
// and re-read.
func GenerateShell(cfg ShellConfig) (*Constellation, error) {
	if cfg.Planes <= 0 || cfg.SatsPerPlane <= 0 {
		return nil, fmt.Errorf("orbit: invalid shell geometry %d x %d", cfg.Planes, cfg.SatsPerPlane)
	}
	if cfg.AltitudeKm <= 0 {
		return nil, fmt.Errorf("orbit: invalid altitude %v", cfg.AltitudeKm)
	}
	a := geo.EquatorialRadiusKm + cfg.AltitudeKm
	n := math.Sqrt(MuEarth / (a * a * a)) // rad/s
	revPD := n * 86400 / (2 * math.Pi)    // rev/day
	total := cfg.Planes * cfg.SatsPerPlane

	c := &Constellation{MinElevationDeg: 25}
	idx := 0
	for p := 0; p < cfg.Planes; p++ {
		raan := 360 * float64(p) / float64(cfg.Planes)
		for k := 0; k < cfg.SatsPerPlane; k++ {
			// Walker delta phasing: in-plane spacing plus inter-plane phase
			// offset F*360/T per plane index.
			ma := 360*float64(k)/float64(cfg.SatsPerPlane) +
				360*float64(cfg.PhasingF)*float64(p)/float64(total)
			ma = math.Mod(ma, 360)

			t := tle.TLE{
				Name:            fmt.Sprintf("%s-%d", cfg.Name, 1000+idx),
				SatNum:          cfg.FirstSatNum + idx,
				Classification:  'U',
				IntlDesignator:  fmt.Sprintf("20%03dA", p+1),
				Epoch:           cfg.Epoch,
				InclinationDeg:  cfg.InclinationDeg,
				RAANDeg:         raan,
				Eccentricity:    0.0001,
				ArgPerigeeDeg:   90,
				MeanAnomalyDeg:  ma,
				MeanMotionRevPD: revPD,
				ElementSet:      999,
				RevNumber:       1,
			}
			sat, err := FromTLE(t)
			if err != nil {
				return nil, err
			}
			c.Sats = append(c.Sats, sat)
			idx++
		}
	}
	return c, nil
}

// FromCatalogue builds a Constellation from a parsed TLE catalogue.
func FromCatalogue(cat tle.Catalogue, minElevDeg float64) (*Constellation, error) {
	c := &Constellation{MinElevationDeg: minElevDeg}
	for _, t := range cat {
		s, err := FromTLE(t)
		if err != nil {
			return nil, err
		}
		c.Sats = append(c.Sats, s)
	}
	return c, nil
}

// Catalogue serialises the constellation back to TLE records.
func (c *Constellation) Catalogue() tle.Catalogue {
	cat := make(tle.Catalogue, 0, len(c.Sats))
	for _, s := range c.Sats {
		cat = append(cat, s.Elems)
	}
	return cat
}

// Visible is one satellite currently above the observer's minimum elevation.
type Visible struct {
	Sat  *Satellite
	Look geo.LookAngles
}

// VisibleFrom returns the satellites above the constellation's minimum
// elevation at time t, sorted by descending elevation.
func (c *Constellation) VisibleFrom(obs geo.LatLon, t time.Time) []Visible {
	return c.VisibleFromAppend(obs, t, nil)
}

// VisibleFromBrute is the exhaustive reference scan: every satellite is
// propagated and look-angle tested. It is what VisibleFrom did before the
// pruned engine existed and is kept as the oracle for the engine's
// equivalence property test and as the BruteForce execution path.
func (c *Constellation) VisibleFromBrute(obs geo.LatLon, t time.Time) []Visible {
	var out []Visible
	for _, s := range c.Sats {
		la := s.Look(obs, t)
		if la.ElevationDeg >= c.MinElevationDeg {
			out = append(out, Visible{Sat: s, Look: la})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Look.ElevationDeg > out[j].Look.ElevationDeg
	})
	return out
}

// SelectionPolicy chooses a serving satellite among the visible ones.
type SelectionPolicy int

const (
	// HighestElevation picks the satellite with the greatest elevation,
	// the default assumption for Starlink terminals.
	HighestElevation SelectionPolicy = iota
	// LongestRemainingVisibility picks the visible satellite that will stay
	// above the elevation mask the longest, minimising handover rate. Used
	// by the handover-policy ablation.
	LongestRemainingVisibility
)

// String implements fmt.Stringer.
func (p SelectionPolicy) String() string {
	switch p {
	case HighestElevation:
		return "highest-elevation"
	case LongestRemainingVisibility:
		return "longest-visibility"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Serving returns the satellite a terminal at obs would use at time t under
// the given policy, or nil if none is visible.
func (c *Constellation) Serving(obs geo.LatLon, t time.Time, policy SelectionPolicy) *Visible {
	var buf []Visible
	v, ok := c.ServingInto(obs, t, policy, &buf)
	if !ok {
		return nil
	}
	return &v
}

// ServingInto is the allocation-free form of Serving: the visibility scan
// reuses *scratch (grown as needed and written back), and the chosen
// satellite is returned by value. ok is false when nothing is visible.
func (c *Constellation) ServingInto(obs geo.LatLon, t time.Time, policy SelectionPolicy, scratch *[]Visible) (v Visible, ok bool) {
	vis := c.VisibleFromAppend(obs, t, (*scratch)[:0])
	*scratch = vis
	if len(vis) == 0 {
		return Visible{}, false
	}
	switch policy {
	case LongestRemainingVisibility:
		best := 0
		bestDur := -1.0
		for i := range vis {
			d := c.remainingVisibility(vis[i].Sat, obs, t)
			if d > bestDur {
				bestDur = d
				best = i
			}
		}
		return vis[best], true
	default: // HighestElevation: vis is already sorted
		return vis[0], true
	}
}

// remainingVisibility estimates, by 5-second stepping, how long the satellite
// stays above the elevation mask from obs (capped at 20 minutes).
func (c *Constellation) remainingVisibility(s *Satellite, obs geo.LatLon, t time.Time) float64 {
	const step = 5 * time.Second
	const maxHorizon = 20 * time.Minute
	for dt := step; dt <= maxHorizon; dt += step {
		la := s.Look(obs, t.Add(dt))
		if la.ElevationDeg < c.MinElevationDeg {
			return dt.Seconds()
		}
	}
	return maxHorizon.Seconds()
}

// Pass is one interval during which a satellite is continuously visible.
type Pass struct {
	Sat        *Satellite
	Start      time.Time
	End        time.Time
	MaxElevDeg float64
}

// Passes scans [start, end] at the given step and returns the visibility
// passes of the satellite from obs.
func (c *Constellation) Passes(s *Satellite, obs geo.LatLon, start, end time.Time, step time.Duration) []Pass {
	if step <= 0 {
		step = time.Second
	}
	var passes []Pass
	var cur *Pass
	for t := start; !t.After(end); t = t.Add(step) {
		la := s.Look(obs, t)
		if la.ElevationDeg >= c.MinElevationDeg {
			if cur == nil {
				cur = &Pass{Sat: s, Start: t, MaxElevDeg: la.ElevationDeg}
			} else if la.ElevationDeg > cur.MaxElevDeg {
				cur.MaxElevDeg = la.ElevationDeg
			}
			cur.End = t
		} else if cur != nil {
			passes = append(passes, *cur)
			cur = nil
		}
	}
	if cur != nil {
		passes = append(passes, *cur)
	}
	return passes
}

// CoverageStats summarises constellation visibility from one observer over
// a scan window — the geometry behind the paper's geographic variability
// discussion (a 53-degree shell serves mid-latitudes far better than the
// tropics).
type CoverageStats struct {
	Samples     int
	MinVisible  int
	MeanVisible float64
	MaxVisible  int
	// OutageFraction is the share of samples with no satellite above the
	// elevation mask.
	OutageFraction float64
}

// Coverage scans [start, end] at the given step and tallies visibility.
func (c *Constellation) Coverage(obs geo.LatLon, start, end time.Time, step time.Duration) CoverageStats {
	if step <= 0 {
		step = time.Minute
	}
	st := CoverageStats{MinVisible: int(^uint(0) >> 1)}
	total := 0
	outages := 0
	var buf []Visible
	for t := start; !t.After(end); t = t.Add(step) {
		buf = c.VisibleFromAppend(obs, t, buf[:0])
		n := len(buf)
		st.Samples++
		total += n
		if n == 0 {
			outages++
		}
		if n < st.MinVisible {
			st.MinVisible = n
		}
		if n > st.MaxVisible {
			st.MaxVisible = n
		}
	}
	if st.Samples > 0 {
		st.MeanVisible = float64(total) / float64(st.Samples)
		st.OutageFraction = float64(outages) / float64(st.Samples)
	} else {
		st.MinVisible = 0
	}
	return st
}
