package orbit

import (
	"math"
	"strings"
	"testing"
	"time"

	"starlinkview/internal/geo"
	"starlinkview/internal/tle"
)

var epoch = time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)

func testShell(t *testing.T) *Constellation {
	t.Helper()
	// A smaller shell keeps unit tests fast while preserving geometry:
	// same altitude/inclination, fewer planes.
	c, err := GenerateShell(ShellConfig{
		Name:           "STARLINK",
		AltitudeKm:     550,
		InclinationDeg: 53,
		Planes:         24,
		SatsPerPlane:   22,
		PhasingF:       13,
		Epoch:          epoch,
		FirstSatNum:    44000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromTLEValidation(t *testing.T) {
	bad := tle.TLE{Name: "X", MeanMotionRevPD: 0}
	if _, err := FromTLE(bad); err == nil {
		t.Error("want error for zero mean motion")
	}
	bad = tle.TLE{Name: "X", MeanMotionRevPD: 15, Eccentricity: 1.5}
	if _, err := FromTLE(bad); err == nil {
		t.Error("want error for hyperbolic eccentricity")
	}
}

func TestAltitudeAndPeriodShell1(t *testing.T) {
	c := testShell(t)
	s := c.Sats[0]
	if alt := s.AltitudeKm(); math.Abs(alt-550) > 1 {
		t.Errorf("altitude = %v, want ~550", alt)
	}
	// A 550 km circular orbit has a ~95.7 minute period.
	if p := s.PeriodSec() / 60; math.Abs(p-95.7) > 1 {
		t.Errorf("period = %v min, want ~95.7", p)
	}
}

func TestOrbitalRadiusConstantForCircular(t *testing.T) {
	c := testShell(t)
	s := c.Sats[0]
	want := geo.EquatorialRadiusKm + s.AltitudeKm()
	for dt := 0; dt < 6000; dt += 600 {
		r := s.PositionECI(epoch.Add(time.Duration(dt) * time.Second)).Norm()
		if math.Abs(r-want)/want > 0.001 {
			t.Errorf("radius at +%ds = %v, want ~%v", dt, r, want)
		}
	}
}

func TestPeriodicity(t *testing.T) {
	c := testShell(t)
	s := c.Sats[0]
	p0 := s.PositionECI(epoch)
	p1 := s.PositionECI(epoch.Add(time.Duration(s.PeriodSec() * float64(time.Second))))
	// After one period the ECI position repeats except for slow J2 drift.
	if d := p1.Sub(p0).Norm(); d > 30 {
		t.Errorf("position drift after one period = %v km, want < 30", d)
	}
}

func TestGroundSpeed(t *testing.T) {
	c := testShell(t)
	s := c.Sats[0]
	// LEO orbital speed at 550 km is ~7.59 km/s.
	p0 := s.PositionECI(epoch)
	p1 := s.PositionECI(epoch.Add(time.Second))
	v := p1.Sub(p0).Norm()
	if math.Abs(v-7.59) > 0.1 {
		t.Errorf("orbital speed = %v km/s, want ~7.59", v)
	}
}

func TestLatitudeBoundedByInclination(t *testing.T) {
	c := testShell(t)
	for _, s := range c.Sats[:10] {
		for dt := 0; dt < 6000; dt += 60 {
			p := s.PositionECEF(epoch.Add(time.Duration(dt) * time.Second))
			lat := geo.Rad2Deg(math.Asin(p.Z / p.Norm()))
			if math.Abs(lat) > 53.6 { // inclination + small slack
				t.Fatalf("satellite %s latitude %v exceeds inclination", s.Name, lat)
			}
		}
	}
}

func TestGenerateShellCounts(t *testing.T) {
	c := testShell(t)
	if len(c.Sats) != 24*22 {
		t.Fatalf("sat count = %d, want %d", len(c.Sats), 24*22)
	}
	names := map[string]bool{}
	nums := map[int]bool{}
	for _, s := range c.Sats {
		if names[s.Name] {
			t.Fatalf("duplicate name %q", s.Name)
		}
		if nums[s.Elems.SatNum] {
			t.Fatalf("duplicate satnum %d", s.Elems.SatNum)
		}
		names[s.Name] = true
		nums[s.Elems.SatNum] = true
		if !strings.HasPrefix(s.Name, "STARLINK-") {
			t.Fatalf("unexpected name %q", s.Name)
		}
	}
}

func TestGenerateShellValidation(t *testing.T) {
	if _, err := GenerateShell(ShellConfig{Planes: 0, SatsPerPlane: 1, AltitudeKm: 550}); err == nil {
		t.Error("want error for zero planes")
	}
	if _, err := GenerateShell(ShellConfig{Planes: 1, SatsPerPlane: 1, AltitudeKm: -1}); err == nil {
		t.Error("want error for negative altitude")
	}
}

func TestCatalogueRoundTrip(t *testing.T) {
	c := testShell(t)
	cat := c.Catalogue()
	if len(cat) != len(c.Sats) {
		t.Fatalf("catalogue len = %d", len(cat))
	}
	// The generated elements survive TLE formatting and re-parsing.
	l1, l2 := cat[0].Format()
	back, err := tle.Parse(cat[0].Name, l1, l2)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	c2, err := FromCatalogue(tle.Catalogue{back}, 25)
	if err != nil {
		t.Fatal(err)
	}
	p1 := c.Sats[0].PositionECEF(epoch.Add(time.Minute))
	p2 := c2.Sats[0].PositionECEF(epoch.Add(time.Minute))
	if d := p1.Sub(p2).Norm(); d > 20 {
		t.Errorf("position diverges %v km after TLE round trip", d)
	}
}

func TestVisibleFromMidLatitude(t *testing.T) {
	c := testShell(t)
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	// With 528 satellites at 53 degrees, London (51.5N) should almost always
	// see at least one above 25 degrees. Check a few instants.
	misses := 0
	for dt := 0; dt < 3600; dt += 300 {
		vis := c.VisibleFrom(london, epoch.Add(time.Duration(dt)*time.Second))
		if len(vis) == 0 {
			misses++
			continue
		}
		// Sorted by descending elevation.
		for i := 1; i < len(vis); i++ {
			if vis[i].Look.ElevationDeg > vis[i-1].Look.ElevationDeg {
				t.Fatal("visible list not sorted by elevation")
			}
		}
		for _, v := range vis {
			if v.Look.ElevationDeg < c.MinElevationDeg {
				t.Fatalf("satellite below elevation mask: %v", v.Look.ElevationDeg)
			}
			maxRange := geo.MaxSlantRangeKm(v.Sat.AltitudeKm(), c.MinElevationDeg)
			if v.Look.RangeKm > maxRange+20 {
				t.Fatalf("visible satellite at range %v km beyond geometric max %v", v.Look.RangeKm, maxRange)
			}
		}
	}
	if misses > 6 {
		t.Errorf("no visible satellite in %d of 12 instants", misses)
	}
}

func TestServingHighestElevation(t *testing.T) {
	c := testShell(t)
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	at := epoch.Add(10 * time.Minute)
	vis := c.VisibleFrom(london, at)
	if len(vis) == 0 {
		t.Skip("no visibility at this instant")
	}
	srv := c.Serving(london, at, HighestElevation)
	if srv == nil {
		t.Fatal("Serving returned nil with visible satellites")
	}
	if srv.Sat != vis[0].Sat {
		t.Errorf("serving = %s, want highest-elevation %s", srv.Sat.Name, vis[0].Sat.Name)
	}
}

func TestServingPolicyDiffers(t *testing.T) {
	c := testShell(t)
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	// Over an hour the two policies should pick a different satellite at
	// least once (longest-visibility trades elevation for dwell time).
	differs := false
	for dt := 0; dt < 3600 && !differs; dt += 120 {
		at := epoch.Add(time.Duration(dt) * time.Second)
		a := c.Serving(london, at, HighestElevation)
		b := c.Serving(london, at, LongestRemainingVisibility)
		if a != nil && b != nil && a.Sat != b.Sat {
			differs = true
		}
	}
	if !differs {
		t.Error("policies never differ over an hour; longest-visibility looks broken")
	}
}

func TestServingNoneVisible(t *testing.T) {
	// A constellation with an impossible elevation mask yields no serving
	// satellite.
	c := testShell(t)
	c.MinElevationDeg = 89.999
	srv := c.Serving(geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}, epoch, HighestElevation)
	if srv != nil {
		t.Errorf("Serving = %v, want nil", srv.Sat.Name)
	}
}

func TestPasses(t *testing.T) {
	c := testShell(t)
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}

	// Find a satellite that is visible at some point in a 30-minute window,
	// then check pass structure.
	end := epoch.Add(30 * time.Minute)
	var passes []Pass
	for _, s := range c.Sats {
		passes = c.Passes(s, london, epoch, end, 5*time.Second)
		if len(passes) > 0 {
			break
		}
	}
	if len(passes) == 0 {
		t.Skip("no passes in window")
	}
	for _, p := range passes {
		if p.End.Before(p.Start) {
			t.Errorf("pass ends before it starts: %+v", p)
		}
		if p.MaxElevDeg < c.MinElevationDeg {
			t.Errorf("pass max elevation %v below mask", p.MaxElevDeg)
		}
		// Shell-1 passes last at most ~6 minutes above a 25 degree mask.
		if d := p.End.Sub(p.Start); d > 10*time.Minute {
			t.Errorf("pass duration %v implausibly long", d)
		}
	}
}

func TestSolveKepler(t *testing.T) {
	for _, e := range []float64{0, 0.0001, 0.1, 0.7, 0.9} {
		for m := 0.0; m < 2*math.Pi; m += 0.5 {
			E := solveKepler(m, e)
			if res := E - e*math.Sin(E) - math.Mod(m, 2*math.Pi); math.Abs(res) > 1e-9 {
				t.Errorf("Kepler residual %v for e=%v m=%v", res, e, m)
			}
		}
	}
}

func TestGMSTReference(t *testing.T) {
	// At J2000.0 (2000-01-01 12:00 UT) GMST was ~280.46 degrees.
	j2000 := time.Date(2000, 1, 1, 12, 0, 0, 0, time.UTC)
	got := geo.Rad2Deg(gmstRad(j2000))
	if math.Abs(got-280.46) > 0.1 {
		t.Errorf("GMST(J2000) = %v deg, want ~280.46", got)
	}
}

func TestSelectionPolicyString(t *testing.T) {
	if HighestElevation.String() != "highest-elevation" {
		t.Error(HighestElevation.String())
	}
	if LongestRemainingVisibility.String() != "longest-visibility" {
		t.Error(LongestRemainingVisibility.String())
	}
	if SelectionPolicy(99).String() == "" {
		t.Error("unknown policy should still render")
	}
}

func TestCoverageLatitudeDependence(t *testing.T) {
	c := testShell(t)
	window := 90 * time.Minute
	scan := func(lat float64) CoverageStats {
		return c.Coverage(geo.LatLon{LatDeg: lat, LonDeg: 0}, epoch, epoch.Add(window), time.Minute)
	}
	equator := scan(0)
	midLat := scan(52)
	if midLat.MeanVisible <= equator.MeanVisible {
		t.Errorf("53-degree shell should favour mid-latitudes: equator %.1f vs 52N %.1f",
			equator.MeanVisible, midLat.MeanVisible)
	}
	if midLat.Samples != int(window/time.Minute)+1 {
		t.Errorf("samples = %d", midLat.Samples)
	}
	if midLat.MinVisible > midLat.MaxVisible {
		t.Error("min > max")
	}
	if midLat.OutageFraction < 0 || midLat.OutageFraction > 1 {
		t.Errorf("outage fraction = %v", midLat.OutageFraction)
	}
}

func TestCoverageEmptyWindow(t *testing.T) {
	c := testShell(t)
	st := c.Coverage(geo.LatLon{LatDeg: 51.5}, epoch, epoch.Add(time.Second), 0)
	if st.Samples == 0 {
		t.Error("zero-step scan should default the step and sample")
	}
}
