GO ?= go

# Each fuzz target gets this much wall time under `make fuzz`.
FUZZTIME ?= 30s

.PHONY: build test check fuzz bench bench-trace bench-sim bench-cluster bench-e2e bench-obsplane bench-tsdb

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and the unit tests must pass.
test: build
	$(GO) test ./...

# Tier-2 gate: vet-clean and race-clean across the whole tree, then the
# fuzz corpus sweep. The trace package runs first under -race as a fast
# dedicated gate (concurrent spans against scrapes is its whole contract);
# the full -race sweep then covers everything including the collector.
check: build
	$(GO) vet ./...
	$(GO) test -race ./internal/trace/...
	$(GO) test -race -run 'TestShedOverloadKeepsSampledTraffic' ./internal/collector/
	$(GO) test -race -run 'TestAlertFiresUnderOverload' ./internal/collector/
	$(GO) test -race -timeout 30m ./...
	$(GO) test -run 'TestBatchIngestAllocBudget' -count 1 ./internal/collector/
	$(GO) test -run '^$$' -bench 'Benchmark(ConstellationVisibility|ConstellationVisibilityBrute|VisibleFromPruned|ServingSelection|Table1|ClusterIngest1|ClusterIngest3|E2EIngestCSV|E2EIngestBatch)$$' -benchtime 1x -short .
	$(GO) run ./cmd/campaign -smoke
	$(MAKE) fuzz

# Fuzz the parsers that face untrusted bytes: WAL segment replay (the
# crash-recovery read path) and the dataset row/stream decoders the
# collector's ingest and replay run per record. Native Go fuzzing; each
# target runs for FUZZTIME.
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzReplaySegment -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run=^$$ -fuzz=FuzzReplayDir -fuzztime=$(FUZZTIME) ./internal/wal/
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalExtensionRow -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=^$$ -fuzz=FuzzReadExtensionCSV -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=^$$ -fuzz=FuzzReadNodeJSON -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=^$$ -fuzz=FuzzUnmarshalBatch -fuzztime=$(FUZZTIME) ./internal/dataset/
	$(GO) test -run=^$$ -fuzz=FuzzReplayBatchFrame -fuzztime=$(FUZZTIME) ./internal/collector/
	$(GO) test -run=^$$ -fuzz=FuzzParse$$ -fuzztime=$(FUZZTIME) ./internal/tle/
	$(GO) test -run=^$$ -fuzz=FuzzDecodeBlock -fuzztime=$(FUZZTIME) ./internal/tsdb/

# Benchmark pass: run the collector/WAL benchmarks and write the results
# as a machine-readable artifact. BENCH_collector.json is the baseline the
# ingest hot path is held to (BenchmarkCollectorIngest must not regress).
BENCHTIME ?= 1s
bench:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCHTIME) . | tee bench.out
	$(GO) run ./tools/benchjson < bench.out > BENCH_collector.json
	@rm -f bench.out
	@echo "wrote BENCH_collector.json"

# Tracing-overhead pass: run just the traced/untraced ingest pair and write
# the comparison artifact. The comparisons block's delta_pct for shards=4 is
# the tracing budget number (<= 5%).
bench-trace:
	$(GO) test -run '^$$' -bench 'Benchmark(Collector|Traced)Ingest' -benchmem -benchtime $(BENCHTIME) . | tee bench-trace.out
	$(GO) run ./tools/benchjson < bench-trace.out > BENCH_trace.json
	@rm -f bench-trace.out
	@echo "wrote BENCH_trace.json"

# Simulation-performance pass: the constellation-engine pairs (pruned vs
# brute-force visibility, engine-parallel vs serial-brute Table 1 pipeline)
# plus the orbit micro-benchmarks. benchjson pairs the base/candidate rows,
# prints per-pair and geomean speedups on stderr, and BENCH_sim.json is the
# committed artifact those speedups are held to.
bench-sim:
	$(GO) test -run '^$$' -bench 'Benchmark(ConstellationVisibility|ConstellationVisibilityBrute|VisibleFromPruned|ServingSelection|OrbitPropagation|Table1|Table1Serial)$$' -benchmem -benchtime $(BENCHTIME) -timeout 60m . | tee bench-sim.out
	$(GO) run ./tools/benchjson < bench-sim.out > BENCH_sim.json
	@rm -f bench-sim.out
	@echo "wrote BENCH_sim.json"

# Cluster-scaling pass: durable ingest through 1 vs 3 collectord instances
# behind ring-routing clients (one synchronous stream per instance, acks
# gated on the group-commit fsync). benchjson pairs the rows into the
# cluster-3x-vs-1x-ingest comparison; BENCH_cluster.json is the committed
# artifact the >=2x horizontal-scaling claim is held to.
bench-cluster:
	$(GO) test -run '^$$' -bench 'BenchmarkClusterIngest(1|3)$$' -benchmem -benchtime $(BENCHTIME) . | tee bench-cluster.out
	$(GO) run ./tools/benchjson < bench-cluster.out > BENCH_cluster.json
	@rm -f bench-cluster.out
	@echo "wrote BENCH_cluster.json"

# End-to-end wire pass: sustained campaign-generator -> client -> collector
# -> WAL records/sec over the per-record CSV wire vs the columnar batch wire
# at 1/4/8 shards. benchjson pairs the rows into e2e-batch-vs-csv-wire
# comparisons (with records/s headlines on stderr) and emits the
# shard_scaling map (shards=8 over shards=1 records/s per wire);
# BENCH_e2e.json is the committed artifact the >=3x batch-wire claim is
# held to. Set CPUPROFILE=/path/cpu.pprof and/or MEMPROFILE=/path/mem.pprof
# to profile the pass.
bench-e2e:
	$(GO) test -run '^$$' -bench 'BenchmarkE2EIngest(CSV|Batch)$$' -benchmem -benchtime $(BENCHTIME) $(if $(CPUPROFILE),-cpuprofile $(CPUPROFILE)) $(if $(MEMPROFILE),-memprofile $(MEMPROFILE)) . | tee bench-e2e.out
	$(GO) run ./tools/benchjson < bench-e2e.out > BENCH_e2e.json
	@rm -f bench-e2e.out
	@echo "wrote BENCH_e2e.json"

# Observability-plane pass. The <=1% admission-check budget is checked
# against the shed-admission-vs-ingest-record comparison: BenchmarkShedAdmit
# prices the armed-idle admission call in isolation, and its ns/op divided
# by one ingested record's ns/op (candidate_ns_op / base_ns_op) must stay
# <= 0.01. The end-to-end shed-armed-idle-vs-off-ingest mirror is a sanity
# cross-check only — it is consumer-bound (producers block on shard drain),
# so its run-to-run scatter is a few percent either side of zero even with
# -count 5 averaging; expect its deltas to straddle zero, not to resolve
# sub-1% effects. The federated vs single-instance scrape pair prices the
# fan-out+merge cost. BENCH_obsplane.json is the committed artifact.
bench-obsplane:
	$(GO) test -run '^$$' -bench 'Benchmark(CollectorIngest|ShedIdleIngest|ShedAdmit|ScrapeSingle|ScrapeFederated)$$' -benchmem -benchtime $(BENCHTIME) -count 5 -timeout 30m . | tee bench-obsplane.out
	$(GO) run ./tools/benchjson < bench-obsplane.out > BENCH_obsplane.json
	@rm -f bench-obsplane.out
	@echo "wrote BENCH_obsplane.json"

# Embedded-tsdb pass. Two budgets live in BENCH_tsdb.json:
#   - tsdb-scrape-vs-ingest-record: one self-scrape tick, amortized over the
#     100k records a collector ingests per nominal 1s scrape interval
#     (BenchmarkTSDBScrapeAmortized), divided by one ingested record's ns/op
#     (candidate_ns_op / base_ns_op) must stay <= 0.01.
#   - BenchmarkTSDBCompress's bytes/sample metric must stay <= 2 on the
#     steady-counter workload (vs 16 bytes naive); the benchmark itself
#     fails if the budget is blown.
# BenchmarkTSDBAppend and BenchmarkTSDBRangeQuery pin the store's append
# hot path and a dashboard-shaped 5-minute rate() query latency.
bench-tsdb:
	$(GO) test -run '^$$' -bench 'Benchmark(CollectorIngest|TSDBAppend|TSDBCompress|TSDBRangeQuery|TSDBScrapeAmortized)$$' -benchmem -benchtime $(BENCHTIME) . | tee bench-tsdb.out
	$(GO) run ./tools/benchjson < bench-tsdb.out > BENCH_tsdb.json
	@rm -f bench-tsdb.out
	@echo "wrote BENCH_tsdb.json"
