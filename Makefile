GO ?= go

.PHONY: build test check bench

build:
	$(GO) build ./...

# Tier-1 gate: everything must build and the unit tests must pass.
test: build
	$(GO) test ./...

# Tier-2 gate: vet-clean and race-clean across the whole tree. The collector
# is the most concurrency-heavy package, but the gate covers everything.
check: build
	$(GO) vet ./...
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem
