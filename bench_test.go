// Package bench is the benchmark harness that regenerates every table and
// figure of "A Browser-side View of Starlink Connectivity" (IMC '22), one
// testing.B benchmark per exhibit, plus the ablation benches DESIGN.md calls
// out and micro-benchmarks of the hot substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks execute at a reduced scale so the full sweep stays
// in minutes; each reports its headline numbers as custom metrics next to
// the paper's values (see EXPERIMENTS.md for the mapping). For paper-sized
// runs use cmd/starlinkbench with -scale 1.
package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"starlinkview/internal/cc"
	"starlinkview/internal/cluster"
	"starlinkview/internal/collector"
	"starlinkview/internal/core"
	"starlinkview/internal/extension"
	"starlinkview/internal/geo"
	"starlinkview/internal/ispnet"
	"starlinkview/internal/measure"
	"starlinkview/internal/netsim"
	"starlinkview/internal/obs"
	"starlinkview/internal/orbit"
	"starlinkview/internal/trace"
	"starlinkview/internal/tranco"
	"starlinkview/internal/wal"
	"starlinkview/internal/weather"
	"starlinkview/internal/webperf"
)

// The study (and its six-month browsing campaign) is shared across the
// browsing-derived benchmarks; building it is itself benchmarked once.
var (
	studyOnce sync.Once
	study     *core.Study
	studyErr  error
)

func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		cfg := core.QuickConfig()
		cfg.BrowsingDays = 150 // span both AS migrations for Figure 3
		cfg.Planes = 36
		study, studyErr = core.NewStudy(cfg)
		if studyErr == nil {
			studyErr = study.RunBrowsing()
		}
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

// table1PipelineConfig is the workload for the end-to-end Table 1
// benchmarks: small enough that the serial brute-force baseline finishes in
// sensible time, large enough that the browsing campaign dominates.
func table1PipelineConfig() core.Config {
	cfg := core.QuickConfig()
	cfg.BrowsingDays = 14
	if testing.Short() {
		cfg.BrowsingDays = 7
	}
	return cfg
}

func benchTable1Pipeline(b *testing.B, brute bool, workers int) {
	b.Helper()
	cfg := table1PipelineConfig()
	cfg.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := core.NewStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		s.Constellation.BruteForce = brute
		rows, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.City == "London" {
				b.ReportMetric(r.StarlinkMedianPTT, "London-SL-medPTT-ms(paper:327)")
				b.ReportMetric(r.NonSLMedianPTT, "London-nonSL-medPTT-ms(paper:443)")
			}
		}
	}
}

// BenchmarkTable1 regenerates the citywise PTT breakdown (paper Table 1)
// end to end: build the study, run the browsing campaign on the pruned
// constellation engine with the parallel driver, aggregate.
func BenchmarkTable1(b *testing.B) { benchTable1Pipeline(b, false, 0) }

// BenchmarkTable1Serial runs the identical workload the way the code did
// before the constellation engine existed: exhaustive visibility scans and a
// serial browsing loop. tools/benchjson pairs it with BenchmarkTable1 to
// report the end-to-end speedup; both produce byte-identical tables.
func BenchmarkTable1Serial(b *testing.B) { benchTable1Pipeline(b, true, 1) }

// BenchmarkFigure1 regenerates the user-population map (paper Figure 1).
func BenchmarkFigure1(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := s.Figure1()
		b.ReportMetric(float64(len(rows)), "cities(paper:10)")
	}
}

// BenchmarkFigure3 regenerates the popular/unpopular PTT CDFs before and
// after the AS switch (paper Figure 3).
func BenchmarkFigure3(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(series)), "cdf-series")
	}
}

// BenchmarkFigure4 regenerates the weather/PTT distributions (paper
// Figure 4: clear-sky 470.5 ms -> moderate-rain 931.5 ms medians).
func BenchmarkFigure4(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Condition.String() {
			case "Clear Sky":
				b.ReportMetric(r.Summary.Median, "clear-medPTT-ms(paper:470.5)")
			case "Moderate Rain":
				b.ReportMetric(r.Summary.Median, "rain-medPTT-ms(paper:931.5)")
			}
		}
	}
}

// BenchmarkFigure5 regenerates the hop-by-hop RTT comparison (paper
// Figure 5).
func BenchmarkFigure5(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		if sl := res["starlink"]; len(sl) > 0 {
			b.ReportMetric(sl[0].MeanMs, "starlink-hop1-ms")
			b.ReportMetric(sl[len(sl)-1].MeanMs, "starlink-end-ms")
		}
	}
}

// BenchmarkTable2 regenerates the max-min queueing-delay estimates (paper
// Table 2).
func BenchmarkTable2(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.City == "London" {
				b.ReportMetric(r.Wireless.MedianMs, "London-bentpipe-medq-ms(paper:24.3)")
			}
		}
	}
}

// BenchmarkTable3 regenerates the browser speedtest medians (paper Table 3).
func BenchmarkTable3(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.City == "London" {
				b.ReportMetric(r.DownMbps, "London-DL-Mbps(paper:123.2)")
			}
		}
	}
}

// BenchmarkFigure6a regenerates the per-node iperf download CDFs (paper
// Figure 6a).
func BenchmarkFigure6a(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure6a()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Label {
			case "Barcelona":
				b.ReportMetric(r.MedianMbps, "Barcelona-Mbps(paper:147)")
			case "NorthCarolina":
				b.ReportMetric(r.MedianMbps, "NC-Mbps(paper:34.3)")
			}
		}
	}
}

// BenchmarkFigure6b regenerates the UK throughput time series (paper
// Figure 6b).
func BenchmarkFigure6b(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := s.Figure6b()
		if err != nil {
			b.Fatal(err)
		}
		max := 0.0
		for _, p := range pts {
			if p.DownMbps > max {
				max = p.DownMbps
			}
		}
		b.ReportMetric(max, "max-DL-Mbps(paper:~300)")
	}
}

// BenchmarkFigure6c regenerates the UDP loss CCDF (paper Figure 6c:
// P(loss>=5%)=0.12, P(>=10%)=0.06).
func BenchmarkFigure6c(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6c()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.CCDFAt5, "CCDF-at-5pct(paper:0.12)")
		b.ReportMetric(res.CCDFAt10, "CCDF-at-10pct(paper:0.06)")
		b.ReportMetric(res.MaxPct, "max-loss-pct(paper:~50)")
	}
}

// BenchmarkFigure7 regenerates the loss/line-of-sight correlation window
// (paper Figure 7).
func BenchmarkFigure7(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.DistanceKm)), "serving-satellites")
	}
}

// BenchmarkFigure8 regenerates the congestion-control comparison (paper
// Figure 8).
func BenchmarkFigure8(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "bbr" {
				b.ReportMetric(r.Starlink, "bbr-starlink-norm(paper:~0.55)")
				b.ReportMetric(r.WiFi, "bbr-wifi-norm(paper:>0.9)")
			}
			if r.Algorithm == "vegas" {
				b.ReportMetric(r.Starlink, "vegas-starlink-norm(paper:lowest)")
			}
		}
	}
}

// BenchmarkAblationLossModel compares bursty handover loss against i.i.d.
// loss of equal mean — the design choice behind Figure 8's CC gap.
func BenchmarkAblationLossModel(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.AblationLossModel()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "cubic" {
				b.ReportMetric(r.Bursty, "cubic-bursty-Mbps")
				b.ReportMetric(r.IID, "cubic-iid-Mbps")
			}
		}
	}
}

// BenchmarkAblationHandoverPolicy compares serving-satellite selection
// policies (highest-elevation vs longest-remaining-visibility).
func BenchmarkAblationHandoverPolicy(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.AblationHandoverPolicy()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Policy == "highest-elevation" {
				b.ReportMetric(float64(r.Handovers), "handovers-per-window")
			}
		}
	}
}

// BenchmarkAblationRainFade isolates the rain-fade coupling: page loads
// under moderate rain with the full fade model (capacity + loss) vs a
// latency-only variant, showing the capacity/loss coupling is what produces
// Figure 4's 2x.
func BenchmarkAblationRainFade(b *testing.B) {
	list, err := tranco.NewList(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	site := list.GoogleSite(rng)
	base := webperf.Access{
		RTT: 30 * time.Millisecond, JitterMean: 8 * time.Millisecond,
		DownBps: 200e6, LossProb: 0.0001,
	}
	att := weather.ModerateRain.PathAttenuationDB(40) + 4.5 // incl. wet radome
	full := base
	full.DownBps *= 0.28 // 10^(-att/10) floored
	full.LossProb = 0.0001 + (att-0.5)*0.008
	latencyOnly := base
	latencyOnly.RTT += 8 * time.Millisecond

	opts := webperf.Options{ClientLoc: geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}, CDNEdgeRTT: 4 * time.Millisecond}
	median := func(acc webperf.Access) float64 {
		var vals []float64
		for i := 0; i < 400; i++ {
			pl := webperf.LoadPage(rng, site, acc, opts)
			vals = append(vals, float64(pl.PTT())/1e6)
		}
		// crude median without importing stats: sort-free selection is not
		// needed at benchmark precision; use mean as the reported proxy.
		sum := 0.0
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clear := median(base)
		fullFade := median(full)
		latOnly := median(latencyOnly)
		b.ReportMetric(fullFade/clear, "full-fade-ratio(paper:~2)")
		b.ReportMetric(latOnly/clear, "latency-only-ratio")
	}
}

// BenchmarkExtensionISL projects the paper's future-work scenario: RTTs of
// inter-satellite-link routing against today's bent pipe + fibre.
func BenchmarkExtensionISL(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.ExtensionISL()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.From == "Sydney" {
				b.ReportMetric(r.BentPipeRTTms, "Sydney-bentpipe-RTT-ms")
				b.ReportMetric(r.ISLRTTms, "Sydney-ISL-RTT-ms")
			}
		}
	}
}

// --- Micro-benchmarks of the hot substrates ---

// BenchmarkCollectorIngest measures records/sec through the ingest
// service's sharded aggregation path (hash, bounded queue, per-shard
// streaming stats) at 1, 4 and 8 shards, with concurrent producers.
func BenchmarkCollectorIngest(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	cities := []string{"London", "Seattle", "Sydney", "Berlin", "Warsaw", "Toronto"}
	isps := []string{"starlink", "broadband", "cellular"}
	recs := make([]extension.Record, 8192)
	for i := range recs {
		recs[i] = extension.Record{
			UserID: "anon-bench", City: cities[rng.Intn(len(cities))],
			Country: "GB", ISP: isps[rng.Intn(len(isps))], ASN: 14593,
			Domain: "site-" + string(rune('a'+rng.Intn(26))) + ".example",
			Rank:   1 + rng.Intn(1000),
			PTTMs:  100 + rng.Float64()*900, PLTMs: 500 + rng.Float64()*2000,
		}
	}
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			agg := collector.NewAggregator(collector.Config{Shards: shards, QueueLen: 4096})
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					agg.OfferExtension(recs[int(idx.Add(1))%len(recs)])
				}
			})
			b.StopTimer()
			agg.Close()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
			snap := agg.Snapshot()
			if snap.Processed != uint64(b.N) {
				b.Fatalf("processed %d != offered %d", snap.Processed, b.N)
			}
		})
	}
}

// BenchmarkTracedIngest mirrors BenchmarkCollectorIngest's 4-shard case on
// a tracer-configured aggregator, with one in every ~100 records carried by
// a root+decode span pair (the representative-record pattern the HTTP layer
// uses). Compare against BenchmarkCollectorIngest/shards=4 — tools/benchjson
// emits the delta — to price the tracing layer; the budget is <= 5%.
func BenchmarkTracedIngest(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	cities := []string{"London", "Seattle", "Sydney", "Berlin", "Warsaw", "Toronto"}
	isps := []string{"starlink", "broadband", "cellular"}
	recs := make([]extension.Record, 8192)
	for i := range recs {
		recs[i] = extension.Record{
			UserID: "anon-bench", City: cities[rng.Intn(len(cities))],
			Country: "GB", ISP: isps[rng.Intn(len(isps))], ASN: 14593,
			Domain: "site-" + string(rune('a'+rng.Intn(26))) + ".example",
			Rank:   1 + rng.Intn(1000),
			PTTMs:  100 + rng.Float64()*900, PLTMs: 500 + rng.Float64()*2000,
		}
	}
	b.Run("shards=4", func(b *testing.B) {
		tracer := trace.New(trace.Config{Seed: 99})
		agg := collector.NewAggregator(collector.Config{
			Shards: 4, QueueLen: 4096, Tracer: tracer,
		})
		var idx atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			sends := 0
			for pb.Next() {
				r := recs[int(idx.Add(1))%len(recs)]
				sends++
				if sends%100 == 0 {
					root := tracer.StartRoot("bench ingest", trace.SpanContext{})
					decode := tracer.StartChild(root.Context(), "ingest.decode")
					agg.OfferExtensionSpan(r, decode.Context())
					decode.Finish()
					root.Finish()
				} else {
					agg.OfferExtension(r)
				}
			}
		})
		b.StopTimer()
		agg.Close()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
		snap := agg.Snapshot()
		if snap.Processed != uint64(b.N) {
			b.Fatalf("processed %d != offered %d", snap.Processed, b.N)
		}
	})
}

// benchClusterIngest measures durable cluster ingest end to end: WAL-backed
// collectord instances wired into a consistent-hash cluster, driven by one
// synchronous ring-routing client stream per instance — the standard
// scale-out shape of fixed per-instance client concurrency. Every batch is
// acknowledged only after its group-commit fsync; the 10ms commit tick is
// chosen to dwarf the per-batch CPU cost, so a single synchronous stream is
// commit-latency-bound, not CPU-bound, and the comparison measures how the
// cluster scales the commit pipeline rather than how many cores the host
// has. Adding instances multiplies streams whose commit waits overlap.
// Streams are
// ring-aligned (each worker sends only records its instance owns), so the
// comparison isolates horizontal scale from the forwarding path.
// tools/benchjson pairs the 1- and 3-instance rows into the
// cluster-3x-vs-1x-ingest comparison; the target is >=2x.
func benchClusterIngest(b *testing.B, instances int) {
	rng := rand.New(rand.NewSource(17))
	cities := []string{"London", "Seattle", "Sydney", "Berlin", "Warsaw", "Toronto"}
	isps := []string{"starlink", "broadband", "cellular"}
	recs := make([]extension.Record, 4096)
	for i := range recs {
		recs[i] = extension.Record{
			UserID: "anon-bench", City: cities[rng.Intn(len(cities))],
			Country: "GB", ISP: isps[rng.Intn(len(isps))], ASN: 14593,
			Domain: "site-" + string(rune('a'+rng.Intn(26))) + ".example",
			Rank:   1 + rng.Intn(1000),
			PTTMs:  100 + rng.Float64()*900, PLTMs: 500 + rng.Float64()*2000,
		}
	}

	srvs := make([]*collector.Server, instances)
	addrs := make([]string, instances)
	for i := range srvs {
		srv, err := collector.OpenServer(collector.Config{
			Shards: 2, QueueLen: 4096,
			Registry: obs.NewRegistry(),
			WAL: collector.WALConfig{
				Dir:           b.TempDir(),
				FsyncInterval: 10 * time.Millisecond,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	nodes := make([]*cluster.Node, instances)
	for i := range srvs {
		n, err := cluster.NewNode(cluster.NodeConfig{
			Server: srvs[i], Self: addrs[i], Peers: addrs,
		})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
	}
	defer func() {
		for i := range srvs {
			nodes[i].Close()
			_ = srvs[i].Shutdown(context.Background())
		}
	}()

	// Pin each worker's stream to its own instance: partition the record
	// template by ring owner and split b.N proportionally.
	ring := cluster.NewRing(addrs, cluster.DefaultVNodes)
	idxOf := make(map[string]int, instances)
	for i, a := range addrs {
		idxOf[a] = i
	}
	parts := make([][]extension.Record, instances)
	for _, r := range recs {
		w := idxOf[ring.Owner(r.City, r.ISP)]
		parts[w] = append(parts[w], r)
	}
	// Equal quotas so the streams finish together: wall time then measures
	// the overlapped commit pipeline, not the largest ring partition.
	quotas := make([]int, instances)
	for w, assigned := 0, 0; assigned < b.N; w = (w + 1) % instances {
		if len(parts[w]) > 0 {
			quotas[w]++
			assigned++
		}
	}

	clients := make([]*cluster.Client, instances)
	errs := make([]error, instances)
	var wg sync.WaitGroup
	b.ResetTimer()
	for w := 0; w < instances; w++ {
		if quotas[w] == 0 {
			continue
		}
		cl, err := cluster.NewClient(cluster.ClientConfig{
			Targets: addrs, Route: cluster.RouteRing, BatchSize: 256,
		})
		if err != nil {
			b.Fatal(err)
		}
		clients[w] = cl
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := parts[w]
			for i := 0; i < quotas[w]; i++ {
				if err := clients[w].AddRecord(part[i%len(part)]); err != nil {
					errs[w] = err
					return
				}
			}
			errs[w] = clients[w].Close()
		}(w)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")

	// Zero loss, zero forwards: the cluster accepted exactly what was sent,
	// and every aligned stream hit its owner directly.
	var accepted, forwarded uint64
	for _, srv := range srvs {
		accepted += srv.Aggregator().Snapshot().Accepted
	}
	for _, cl := range clients {
		if cl != nil {
			forwarded += cl.Stats().Forwarded
		}
	}
	if accepted != uint64(b.N) {
		b.Fatalf("cluster accepted %d of %d records", accepted, b.N)
	}
	if forwarded != 0 {
		b.Fatalf("aligned streams forwarded %d records, want 0", forwarded)
	}
}

// BenchmarkClusterIngest1 is the single-instance baseline for the cluster
// scaling comparison.
func BenchmarkClusterIngest1(b *testing.B) { benchClusterIngest(b, 1) }

// BenchmarkClusterIngest3 is the 3-instance cluster on the same workload;
// tools/benchjson reports its speedup over BenchmarkClusterIngest1.
func BenchmarkClusterIngest3(b *testing.B) { benchClusterIngest(b, 3) }

// BenchmarkWALAppend measures the durability substrate: records/sec through
// the write-ahead log at 1/64/512-record commit batches, with and without
// an fsync per commit. The nosync rows isolate the encoding+buffering cost;
// the fsync rows price the durability guarantee itself, and the batch sweep
// shows group commit amortising it.
func BenchmarkWALAppend(b *testing.B) {
	rng := rand.New(rand.NewSource(23))
	payloads := make([][]byte, 512)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf(
			"anon-%08x,London,GB,starlink,14593,2022-04-11T09:00:00Z,site-%d.example,%d,true,%.3f,%.3f,Clear Sky,true,false,false\n",
			rng.Uint32(), rng.Intn(40), 1+rng.Intn(1000), 100+rng.Float64()*900, 500+rng.Float64()*2000))
	}
	for _, mode := range []struct {
		name  string
		fsync bool
	}{{"nosync", false}, {"fsync", true}} {
		for _, batch := range []int{1, 64, 512} {
			b.Run(fmt.Sprintf("%s/batch=%d", mode.name, batch), func(b *testing.B) {
				w, err := wal.Open(wal.Config{Dir: b.TempDir(), SegmentBytes: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				defer w.Close()
				var bytes int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					p := payloads[i%len(payloads)]
					bytes += int64(len(p))
					lsn, err := w.Append(1, p)
					if err != nil {
						b.Fatal(err)
					}
					if (i+1)%batch == 0 {
						if mode.fsync {
							if err := w.Commit(lsn); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				if mode.fsync {
					if err := w.Sync(); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.SetBytes(bytes / int64(b.N))
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
				st := w.Stats()
				b.ReportMetric(float64(st.Syncs), "fsyncs")
			})
		}
	}
}

// BenchmarkNetsimEvents measures raw event-loop throughput.
func BenchmarkNetsimEvents(b *testing.B) {
	sim := netsim.NewSim(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Schedule(time.Microsecond, func() {})
		if i%1024 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}

// BenchmarkOrbitPropagation measures single-satellite position computation.
func BenchmarkOrbitPropagation(b *testing.B) {
	epoch := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c, err := orbit.GenerateShell(orbit.ShellConfig{
		Name: "S", AltitudeKm: 550, InclinationDeg: 53,
		Planes: 4, SatsPerPlane: 4, Epoch: epoch, FirstSatNum: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	sat := c.Sats[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat.PositionECEF(epoch.Add(time.Duration(i) * time.Second))
	}
}

// BenchmarkConstellationVisibility measures a full-shell visibility scan
// through the pruned engine (the default VisibleFrom path).
func BenchmarkConstellationVisibility(b *testing.B) {
	epoch := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c, err := orbit.GenerateShell(orbit.Shell1(epoch))
	if err != nil {
		b.Fatal(err)
	}
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.VisibleFrom(london, epoch.Add(time.Duration(i)*time.Second))
	}
}

// BenchmarkConstellationVisibilityBrute is the pre-engine exhaustive scan on
// the same workload — the baseline tools/benchjson pairs with
// BenchmarkConstellationVisibility.
func BenchmarkConstellationVisibilityBrute(b *testing.B) {
	epoch := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c, err := orbit.GenerateShell(orbit.Shell1(epoch))
	if err != nil {
		b.Fatal(err)
	}
	c.BruteForce = true
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.VisibleFrom(london, epoch.Add(time.Duration(i)*time.Second))
	}
}

// BenchmarkVisibleFromPruned measures the allocation-free hot path the bent
// pipe drives: pruned candidate search into a caller-owned buffer. The
// companion test TestVisibleFromAppendZeroAllocs pins allocs/op at zero.
func BenchmarkVisibleFromPruned(b *testing.B) {
	epoch := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c, err := orbit.GenerateShell(orbit.Shell1(epoch))
	if err != nil {
		b.Fatal(err)
	}
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	buf := c.VisibleFromAppend(london, epoch, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = c.VisibleFromAppend(london, epoch.Add(time.Duration(i)*time.Second), buf[:0])
	}
}

// BenchmarkServingSelection measures serving-satellite selection per policy
// through the scratch-buffer path the bent pipe uses every refresh tick.
func BenchmarkServingSelection(b *testing.B) {
	epoch := time.Date(2022, 4, 1, 0, 0, 0, 0, time.UTC)
	c, err := orbit.GenerateShell(orbit.Shell1(epoch))
	if err != nil {
		b.Fatal(err)
	}
	london := geo.LatLon{LatDeg: 51.5, LonDeg: -0.12}
	for _, policy := range []orbit.SelectionPolicy{orbit.HighestElevation, orbit.LongestRemainingVisibility} {
		b.Run(policy.String(), func(b *testing.B) {
			var scratch []orbit.Visible
			c.ServingInto(london, epoch, policy, &scratch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.ServingInto(london, epoch.Add(time.Duration(i)*time.Second), policy, &scratch)
			}
		})
	}
}

// BenchmarkCCFlow measures one second of simulated bulk TCP per iteration.
func BenchmarkCCFlow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim(7)
		client := netsim.NewNode("c", "")
		server := netsim.NewNode("s", "")
		path, err := netsim.NewPath([]*netsim.Node{client, server},
			[]netsim.LinkSpec{{RateBps: 100e6, Delay: 10 * time.Millisecond, QueueByte: 500000}}, nil)
		if err != nil {
			b.Fatal(err)
		}
		f, err := cc.NewFlow(sim, path, cc.FlowConfig{Algorithm: cc.NewCubic()})
		if err != nil {
			b.Fatal(err)
		}
		f.Start()
		sim.RunUntil(time.Second)
		f.Stop()
	}
}

// BenchmarkPageLoad measures the analytic page-load model.
func BenchmarkPageLoad(b *testing.B) {
	list, err := tranco.NewList(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	site, err := list.Site(50)
	if err != nil {
		b.Fatal(err)
	}
	acc := webperf.Access{RTT: 30 * time.Millisecond, JitterMean: 8 * time.Millisecond, DownBps: 150e6, LossProb: 0.002}
	opts := webperf.Options{ClientLoc: geo.LatLon{LatDeg: 51.5}, CDNEdgeRTT: 4 * time.Millisecond}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		webperf.LoadPage(rng, site, acc, opts)
	}
}

// BenchmarkTrancoSite measures deterministic site generation.
func BenchmarkTrancoSite(b *testing.B) {
	list, err := tranco.NewList(1, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := list.Site(1 + i%999999); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpeedtest measures one multi-stream speedtest on a broadband path.
func BenchmarkSpeedtest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := netsim.NewSim(11)
		built, err := ispnet.Build(ispnet.Config{
			Kind: ispnet.Broadband, City: ispnet.London, Server: ispnet.LondonDC,
			Short: true, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := measure.Speedtest(sim, built.Path, measure.SpeedtestOptions{PhaseDuration: 2 * time.Second}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Observability-plane benchmarks (make bench-obsplane) ---

// benchIngestRecords builds the synthetic record set BenchmarkCollectorIngest
// uses, so the shed-armed mirror below measures the identical workload.
func benchIngestRecords() []extension.Record {
	rng := rand.New(rand.NewSource(17))
	cities := []string{"London", "Seattle", "Sydney", "Berlin", "Warsaw", "Toronto"}
	isps := []string{"starlink", "broadband", "cellular"}
	recs := make([]extension.Record, 8192)
	for i := range recs {
		recs[i] = extension.Record{
			UserID: "anon-bench", City: cities[rng.Intn(len(cities))],
			Country: "GB", ISP: isps[rng.Intn(len(isps))], ASN: 14593,
			Domain: "site-" + string(rune('a'+rng.Intn(26))) + ".example",
			Rank:   1 + rng.Intn(1000),
			PTTMs:  100 + rng.Float64()*900, PLTMs: 500 + rng.Float64()*2000,
		}
	}
	return recs
}

// BenchmarkShedIdleIngest mirrors BenchmarkCollectorIngest with the
// admission controller armed but never tripping (the latency watermark is
// an hour; a quiet histogram can't reach it), pricing the per-record
// admission check — one atomic load. tools/benchjson emits the delta
// against BenchmarkCollectorIngest; the budget is <= 1%.
func BenchmarkShedIdleIngest(b *testing.B) {
	recs := benchIngestRecords()
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			agg := collector.NewAggregator(collector.Config{
				Shards: shards, QueueLen: 4096,
				Shed: collector.ShedConfig{AckLatencyP99: time.Hour},
			})
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, ok := agg.Admit(false); ok {
						agg.OfferExtension(recs[int(idx.Add(1))%len(recs)])
					}
				}
			})
			b.StopTimer()
			agg.Close()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")
			snap := agg.Snapshot()
			if snap.Processed != uint64(b.N) {
				b.Fatalf("processed %d != offered %d (idle shedder tripped?)", snap.Processed, b.N)
			}
		})
	}
}

// benchScrapeCluster starts k populated instances in a static-membership
// cluster and returns their advertise addresses (plus a stop func).
func benchScrapeCluster(b *testing.B, k int) ([]string, func()) {
	b.Helper()
	recs := benchIngestRecords()
	srvs := make([]*collector.Server, k)
	addrs := make([]string, k)
	for i := range srvs {
		srv, err := collector.OpenServer(collector.Config{Shards: 2, Registry: obs.NewRegistry()})
		if err != nil {
			b.Fatal(err)
		}
		if err := srv.Start("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		srvs[i] = srv
		addrs[i] = srv.Addr()
	}
	nodes := make([]*cluster.Node, k)
	for i := range srvs {
		n, err := cluster.NewNode(cluster.NodeConfig{Server: srvs[i], Self: addrs[i], Peers: addrs})
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = n
	}
	for i, r := range recs {
		if !srvs[i%k].Aggregator().OfferExtension(r) {
			b.Fatalf("record %d rejected", i)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for i := range srvs {
		want := uint64(len(recs)/k + boolInt(i < len(recs)%k))
		for srvs[i].Aggregator().Snapshot().Processed != want {
			if time.Now().After(deadline) {
				b.Fatalf("instance %d never drained", i)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	return addrs, func() {
		for i := range srvs {
			nodes[i].Close()
			_ = srvs[i].Shutdown(context.Background())
		}
	}
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

func benchScrape(b *testing.B, url string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		n, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			b.Fatalf("scrape: status %d, err %v", resp.StatusCode, err)
		}
		if i == 0 {
			b.SetBytes(n)
		}
	}
}

// BenchmarkScrapeSingle prices one HTTP scrape of a populated instance's
// /metrics — the baseline for the federation overhead comparison.
func BenchmarkScrapeSingle(b *testing.B) {
	addrs, stop := benchScrapeCluster(b, 1)
	defer stop()
	benchScrape(b, "http://"+addrs[0]+collector.PathMetrics)
}

// BenchmarkScrapeFederated prices one federated /cluster/metrics scrape of
// a 3-instance cluster: the coordinator fans out to two peers, parses three
// expositions and merges them. tools/benchjson reports the latency multiple
// over BenchmarkScrapeSingle.
func BenchmarkScrapeFederated(b *testing.B) {
	addrs, stop := benchScrapeCluster(b, 3)
	defer stop()
	benchScrape(b, "http://"+addrs[0]+cluster.PathClusterMetrics)
}

// BenchmarkShedAdmit prices the armed-but-idle admission check in
// isolation — the only work the shed controller adds to an admitted
// request is this call: one atomic load. The committed budget number is
// this ns/op as a fraction of BenchmarkCollectorIngest/shards=4's
// per-record ns/op (the shed-admission-vs-ingest-record comparison in
// BENCH_obsplane.json): candidate/base must stay <= 1%. The end-to-end
// BenchmarkShedIdleIngest mirror cross-checks that the macro pair stays
// statistically flat, but that pair is consumer-bound and too noisy to
// resolve a sub-1% delta on its own.
func BenchmarkShedAdmit(b *testing.B) {
	agg := collector.NewAggregator(collector.Config{
		Shards: 1, QueueLen: 64,
		Shed: collector.ShedConfig{AckLatencyP99: time.Hour},
	})
	defer agg.Close()
	var shed atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := agg.Admit(false); !ok {
				shed.Add(1)
			}
		}
	})
	if shed.Load() != 0 {
		b.Fatalf("idle controller shed %d requests", shed.Load())
	}
}
