module starlinkview

go 1.22
