package bench

// End-to-end wire benchmarks: sustained records/sec from the campaign
// generator through a real HTTP client, the collector's ingest handler, and
// the write-ahead log, comparing the per-record CSV wire against the
// columnar batch wire at 1/4/8 shards.
//
// The workload is a real campaign chunk (so string repetition, weather
// skew, and float distributions match production traffic, where the
// dictionary and delta encodings earn their keep). Four concurrent client
// streams overlap the group-commit waits, so the measurement is the wire's
// per-record CPU — encode, HTTP framing, decode, WAL append — rather than
// fsync latency, which both wires pay identically.
//
// tools/benchjson pairs BenchmarkE2EIngestBatch rows against the
// BenchmarkE2EIngestCSV row with the same shard count; `make bench-e2e`
// writes the comparison as BENCH_e2e.json. The acceptance target is a >=3x
// batch-wire speedup.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"starlinkview/internal/collector"
	"starlinkview/internal/core"
	"starlinkview/internal/extension"
	"starlinkview/internal/obs"
)

var (
	e2eOnce sync.Once
	e2eRecs []extension.Record
	e2eErr  error
)

// e2eWorkload generates one campaign chunk once and shares it across every
// e2e benchmark: ~15k records over 20 cities, both ISP classes, live
// weather.
func e2eWorkload(b *testing.B) []extension.Record {
	b.Helper()
	e2eOnce.Do(func() {
		cfg := core.SmallCampaign()
		cfg.Users = 4000
		cfg.Chunks = 1
		cfg.Workers = 4
		camp, err := core.NewCampaign(cfg)
		if err != nil {
			e2eErr = err
			return
		}
		e2eErr = camp.RunChunk(func(recs []extension.Record) error {
			e2eRecs = recs
			return nil
		})
	})
	if e2eErr != nil {
		b.Fatal(e2eErr)
	}
	if len(e2eRecs) == 0 {
		b.Fatal("campaign chunk produced no records")
	}
	return e2eRecs
}

func benchE2EIngest(b *testing.B, wire collector.Wire, shards int) {
	recs := e2eWorkload(b)
	srv, err := collector.OpenServer(collector.Config{
		Shards: shards, QueueLen: 8192,
		Registry: obs.NewRegistry(),
		WAL: collector.WALConfig{
			Dir:            b.TempDir(),
			FsyncInterval:  2 * time.Millisecond,
			MaxSyncWindows: 4,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := srv.Shutdown(context.Background()); err != nil {
			b.Fatal(err)
		}
	}()

	const streams = 4
	quotas := make([]int, streams)
	for i := 0; i < b.N; i++ {
		quotas[i%streams]++
	}
	errs := make([]error, streams)
	var wg sync.WaitGroup
	b.ResetTimer()
	for s := 0; s < streams; s++ {
		if quotas[s] == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			client := collector.NewClient(srv.URL(), collector.ClientConfig{
				Wire: wire, BatchSize: 1024, FlushEvery: 0,
			})
			off := s * (len(recs) / streams)
			for i := 0; i < quotas[s]; i++ {
				if err := client.AddRecord(recs[(off+i)%len(recs)]); err != nil {
					errs[s] = err
					return
				}
			}
			errs[s] = client.Close()
		}(s)
	}
	wg.Wait()
	b.StopTimer()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/s")

	if acc := srv.Aggregator().Snapshot().Accepted; acc != uint64(b.N) {
		b.Fatalf("server accepted %d of %d records", acc, b.N)
	}
}

// BenchmarkE2EIngestCSV is the per-record baseline: every record crosses
// the wire as a CSV row and lands in the WAL as its own record.
func BenchmarkE2EIngestCSV(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchE2EIngest(b, collector.WireCSV, shards)
		})
	}
}

// BenchmarkE2EIngestBatch is the columnar candidate: records cross as
// struct-of-arrays frames and each frame is one WAL append.
func BenchmarkE2EIngestBatch(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchE2EIngest(b, collector.WireBatch, shards)
		})
	}
}
